"""Table IV — accuracy / log-loss comparison against prior methods.

The paper's Table IV (MSKCFG, cross-validated):

    XGBoost + heavy feature engineering   log-loss 0.0197  acc 99.42
    MAGIC (DGCNN)                         log-loss 0.0543  acc 99.25
    Autoencoder + XGBoost                 log-loss 0.0748  acc 98.20
    Strand gene sequence classifier       log-loss 0.2228  acc 97.41
    Ensemble of random forests            (not reported)   acc 99.30
    Random forest + feature engineering   (not reported)   acc 99.21

Shape to hold at benchmark scale: gradient boosting on engineered
features and MAGIC both near the top and close to each other, the
autoencoder pipeline behind them, and Strand clearly worst on log-loss.
"""

import numpy as np

from repro.baselines import (
    AutoencoderGbtClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    StrandClassifier,
    dataset_to_matrix,
    standardize,
)
from repro.train.metrics import average_reports, evaluate_predictions

from benchmarks.bench_common import save_result

PAPER_TABLE4 = {
    "MAGIC (DGCNN)": {"log_loss": 0.0543, "accuracy": 99.25},
    "GBT + feature engineering": {"log_loss": 0.0197, "accuracy": 99.42},
    "Autoencoder + GBT": {"log_loss": 0.0748, "accuracy": 98.20},
    "Strand sequence classifier": {"log_loss": 0.2228, "accuracy": 97.41},
    "Call-graph RF ensemble": {"log_loss": None, "accuracy": 99.30},
    "Random forest": {"log_loss": None, "accuracy": 99.21},
}


def cv_feature_baseline(make_model, dataset, n_splits=5, scale=False, seed=3):
    """k-fold CV of a feature-vector classifier, mirroring the protocol."""
    reports = []
    for train_idx, val_idx in dataset.stratified_kfold(n_splits, seed=seed):
        train = [dataset.acfgs[i] for i in train_idx]
        val = [dataset.acfgs[i] for i in val_idx]
        x_train, y_train = dataset_to_matrix(train)
        x_val, y_val = dataset_to_matrix(val)
        if scale:
            x_train, x_val = standardize(x_train, x_val)
        model = make_model()
        model.fit(x_train, y_train)
        reports.append(
            evaluate_predictions(
                y_val, model.predict_proba(x_val), dataset.num_classes
            )
        )
    return average_reports(reports)


def cv_call_graph_ensemble(dataset, n_splits=5, seed=3):
    """5-fold CV of the function-call-graph RF ensemble (row [11]).

    Call graphs are extracted from the same synthetic listings the ACFG
    corpus was built from (same total/seed, so labels align by index).
    """
    from repro.callgraph import CallGraphForestEnsemble, call_graph_from_text
    from repro.datasets import generate_mskcfg_listings

    from benchmarks import bench_common

    listings = generate_mskcfg_listings(
        total=bench_common.MSKCFG_TOTAL,
        seed=bench_common.SEED,
        minimum_per_family=bench_common.MIN_PER_FAMILY,
    )
    graphs = [call_graph_from_text(text, name=name) for name, text, _ in listings]
    labels = np.array([label for _, _, label in listings])
    assert len(graphs) == len(dataset), "corpus regeneration must align"

    reports = []
    for train_idx, val_idx in dataset.stratified_kfold(n_splits, seed=seed):
        model = CallGraphForestEnsemble(
            num_classes=dataset.num_classes,
            bucket_widths=(16, 32, 64),
            n_estimators=25,
            seed=seed,
        )
        model.fit([graphs[i] for i in train_idx], labels[train_idx])
        reports.append(
            evaluate_predictions(
                labels[val_idx],
                model.predict_proba([graphs[i] for i in val_idx]),
                dataset.num_classes,
            )
        )
    return average_reports(reports)


def cv_strand(dataset, n_splits=5, seed=3):
    reports = []
    for train_idx, val_idx in dataset.stratified_kfold(n_splits, seed=seed):
        train = [dataset.acfgs[i] for i in train_idx]
        val = [dataset.acfgs[i] for i in val_idx]
        model = StrandClassifier(num_classes=dataset.num_classes)
        model.fit(train, [a.label for a in train])
        reports.append(
            evaluate_predictions(
                np.array([a.label for a in val]),
                model.predict_proba(val),
                dataset.num_classes,
            )
        )
    return average_reports(reports)


def test_table4_method_comparison(benchmark, mskcfg_bench, mskcfg_cv):
    num_classes = mskcfg_bench.num_classes
    rows = {}

    magic_report = mskcfg_cv.averaged_report
    rows["MAGIC (DGCNN)"] = magic_report

    rows["GBT + feature engineering"] = cv_feature_baseline(
        lambda: GradientBoostingClassifier(
            num_classes=num_classes, n_rounds=150, learning_rate=0.2,
            max_depth=4, seed=0,
        ),
        mskcfg_bench,
    )
    rows["Autoencoder + GBT"] = cv_feature_baseline(
        lambda: AutoencoderGbtClassifier(
            num_classes=num_classes, ae_epochs=60, gbt_rounds=40, seed=0
        ),
        mskcfg_bench,
        scale=True,
    )
    rows["Random forest"] = cv_feature_baseline(
        lambda: RandomForestClassifier(
            num_classes=num_classes, n_estimators=60, seed=0
        ),
        mskcfg_bench,
    )
    rows["Call-graph RF ensemble"] = cv_call_graph_ensemble(mskcfg_bench)
    rows["Strand sequence classifier"] = cv_strand(mskcfg_bench)

    print("\nTable IV — cross-validated comparison on MSKCFG:")
    print(f"{'Approach':32s}{'LogLoss':>9s}{'Accuracy':>10s}"
          f"{'Paper LL':>10s}{'Paper Acc':>10s}")
    ordered = sorted(rows.items(), key=lambda kv: kv[1].log_loss)
    for name, report in ordered:
        paper = PAPER_TABLE4[name]
        paper_ll = f"{paper['log_loss']:.4f}" if paper["log_loss"] else "n/a"
        print(f"{name:32s}{report.log_loss:9.4f}{100*report.accuracy:9.2f}%"
              f"{paper_ll:>10s}{paper['accuracy']:9.2f}%")

    # Shape assertions: top tier (GBT, MAGIC, RF) beats Strand on log-loss;
    # MAGIC is competitive with the engineered-feature ensembles.
    strand_ll = rows["Strand sequence classifier"].log_loss
    for top in ("GBT + feature engineering", "MAGIC (DGCNN)", "Random forest"):
        assert rows[top].log_loss < strand_ll
    assert rows["MAGIC (DGCNN)"].accuracy > 0.85
    top_acc = max(r.accuracy for r in rows.values())
    assert rows["MAGIC (DGCNN)"].accuracy > top_acc - 0.12

    # Benchmark one cheap representative unit: a GBT probability pass.
    x_all, _ = dataset_to_matrix(mskcfg_bench.acfgs)
    gbt = GradientBoostingClassifier(num_classes=num_classes, n_rounds=10, seed=0)
    gbt.fit(x_all[:100], mskcfg_bench.labels()[:100])
    benchmark(lambda: gbt.predict_proba(x_all[:100]))

    save_result("table4_comparison", {
        "measured": {
            name: {
                "log_loss": report.log_loss,
                "accuracy": report.accuracy,
            }
            for name, report in rows.items()
        },
        "paper": PAPER_TABLE4,
    })
