"""Figure 11 — per-family F1 improvement of MAGIC over ESVC on YANCFG.

The paper plots the relative and absolute F1 deltas: MAGIC beats the
chained-SVM ensemble on ten of twelve malware families (Benign is not
reported for ESVC), with the biggest absolute gains (>= 0.2) on Bagle,
Koobface, Ldpinch and Lmir, and a small regression on Rbot.  Shape to
hold: MAGIC wins on a clear majority of families, with the largest gains
on small families.
"""

import numpy as np

from repro.baselines import EsvcClassifier, dataset_to_matrix, standardize
from repro.train.metrics import average_reports, evaluate_predictions

from benchmarks.bench_common import save_result

#: F1 scores of ESVC reported in [8] as recovered from Figure 11's deltas
#: against Table V (Benign not reported).
PAPER_ESVC_BEHAVIOUR = {
    "wins_for_magic": ["Bagle", "Bifrose", "Koobface", "Ldpinch", "Lmir",
                        "Sdbot", "Swizzor", "Vundo", "Zbot", "Zlob"],
    "losses_for_magic": ["Rbot", "Hupigon"],
}


def cv_esvc(dataset, n_splits=5, seed=3):
    reports = []
    for train_idx, val_idx in dataset.stratified_kfold(n_splits, seed=seed):
        train = [dataset.acfgs[i] for i in train_idx]
        val = [dataset.acfgs[i] for i in val_idx]
        x_train, y_train = dataset_to_matrix(train)
        x_val, y_val = dataset_to_matrix(val)
        x_train, x_val = standardize(x_train, x_val)
        model = EsvcClassifier(
            num_classes=dataset.num_classes, epochs=50, seed=seed
        )
        model.fit(x_train, y_train)
        reports.append(
            evaluate_predictions(
                y_val, model.predict_proba(x_val), dataset.num_classes,
                family_names=dataset.family_names,
            )
        )
    return average_reports(reports)


def test_fig11_magic_vs_esvc(benchmark, yancfg_bench, yancfg_cv):
    esvc_report = cv_esvc(yancfg_bench)
    magic_report = yancfg_cv.averaged_report

    magic_f1 = {n: s.f1 for n, s in magic_report.scores_by_family().items()}
    esvc_f1 = {n: s.f1 for n, s in esvc_report.scores_by_family().items()}

    print("\nFigure 11 — F1 improvement of MAGIC over ESVC (YANCFG):")
    print(f"{'Family':10s}{'MAGIC':>8s}{'ESVC':>8s}{'Absolute':>10s}{'Relative':>10s}")
    deltas = {}
    for family in yancfg_bench.family_names:
        if family == "Benign":
            continue  # not reported in [8], mirroring the paper
        absolute = magic_f1[family] - esvc_f1[family]
        relative = absolute / esvc_f1[family] if esvc_f1[family] > 0 else float("inf")
        deltas[family] = absolute
        rel_text = f"{relative:+.3f}" if np.isfinite(relative) else "inf"
        print(f"{family:10s}{magic_f1[family]:8.3f}{esvc_f1[family]:8.3f}"
              f"{absolute:+10.3f}{rel_text:>10s}")

    wins = sum(1 for d in deltas.values() if d > 0)
    print(f"\nMAGIC wins on {wins}/{len(deltas)} families "
          f"(paper: 10/12 wins)")

    # Shape assertion: MAGIC beats the SVM chain on a clear majority.
    assert wins >= len(deltas) * 0.55

    benchmark(lambda: dataset_to_matrix(yancfg_bench.acfgs[:40]))

    save_result("fig11_esvc_comparison", {
        "magic_f1": magic_f1,
        "esvc_f1": esvc_f1,
        "absolute_improvement": deltas,
        "magic_wins": wins,
        "families_compared": len(deltas),
        "paper_behaviour": PAPER_ESVC_BEHAVIOUR,
    })
