"""End-to-end integration tests: the full MAGIC workflow of Figure 1.

asm listings -> parse -> tag -> CFG -> ACFG -> scale -> DGCNN train ->
predict -> persist -> reload -> predict again.
"""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig
from repro.core.magic import Magic
from repro.datasets import (
    generate_mskcfg_dataset,
    generate_mskcfg_listings,
    generate_yancfg_dataset,
)
from repro.train.trainer import TrainingConfig


@pytest.fixture(scope="module")
def mskcfg():
    return generate_mskcfg_dataset(total=54, seed=21)


class TestFullPipelineMskcfg:
    def test_train_predict_roundtrip(self, mskcfg, tmp_path):
        config = ModelConfig(
            num_attributes=11,
            num_classes=9,
            pooling="adaptive",
            graph_conv_sizes=(16, 16),
            amp_grid=(2, 2),
            conv2d_channels=8,
            hidden_size=32,
            dropout=0.1,
            seed=1,
        )
        magic = Magic(config, mskcfg.family_names)
        train, test = mskcfg.stratified_split(0.25, seed=0)
        history = magic.fit(
            train.acfgs,
            test.acfgs,
            TrainingConfig(epochs=14, batch_size=10, learning_rate=3e-3, seed=0),
        )
        # Training must actually learn something beyond chance (1/9).
        report = magic.evaluate(test.acfgs)
        assert report.accuracy > 0.3
        assert history.train_losses[-1] < history.train_losses[0]

        # Persist and reload: predictions identical.
        directory = str(tmp_path / "magic")
        magic.save(directory)
        restored = Magic.load(directory)
        np.testing.assert_allclose(
            magic.predict_proba(test.acfgs[:6]),
            restored.predict_proba(test.acfgs[:6]),
            atol=1e-12,
        )

    def test_classify_fresh_asm_end_to_end(self, mskcfg):
        config = ModelConfig(
            num_attributes=11, num_classes=9, pooling="sort_weighted",
            graph_conv_sizes=(8, 8), sort_k=10, hidden_size=16, seed=0,
        )
        magic = Magic(config, mskcfg.family_names)
        magic.fit(mskcfg.acfgs, training_config=TrainingConfig(epochs=2, batch_size=16))
        # Classify a never-seen listing straight from text.
        (name, text, label) = generate_mskcfg_listings(total=9, seed=999)[0]
        family, probabilities = magic.classify_asm(text, name=name)
        assert family in mskcfg.family_names
        assert probabilities.shape == (9,)
        np.testing.assert_allclose(probabilities.sum(), 1.0, atol=1e-9)


class TestFullPipelineYancfg:
    def test_pre_extracted_cfg_path(self):
        """YANCFG ships graphs, not asm: train on ACFGs directly."""
        dataset = generate_yancfg_dataset(total=39, seed=5)
        config = ModelConfig(
            num_attributes=11, num_classes=13, pooling="sort_conv1d",
            graph_conv_sizes=(8, 8), sort_k=8, conv1d_channels=(4, 8),
            conv1d_kernel=3, hidden_size=16, seed=0,
        )
        magic = Magic(config, dataset.family_names)
        magic.fit(dataset.acfgs, training_config=TrainingConfig(epochs=2, batch_size=13))
        predictions = magic.predict(dataset.acfgs[:5])
        assert ((0 <= predictions) & (predictions < 13)).all()


class TestBaselineParity:
    def test_dgcnn_and_baselines_share_evaluation(self, mskcfg):
        """The same report machinery serves both model families."""
        from repro.baselines import GradientBoostingClassifier, dataset_to_matrix
        from repro.train.metrics import evaluate_predictions

        train, test = mskcfg.stratified_split(0.3, seed=1)
        x_train, y_train = dataset_to_matrix(train.acfgs)
        x_test, y_test = dataset_to_matrix(test.acfgs)
        booster = GradientBoostingClassifier(num_classes=9, n_rounds=10, seed=0)
        booster.fit(x_train, y_train)
        report = evaluate_predictions(
            y_test, booster.predict_proba(x_test), 9, mskcfg.family_names
        )
        assert report.accuracy > 0.5
        assert len(report.per_class) == 9
