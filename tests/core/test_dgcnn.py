"""Tests for the three DGCNN model variants."""

import numpy as np
import pytest

from repro.core.dgcnn import (
    POOLING_TYPES,
    DgcnnAdaptivePooling,
    DgcnnSortPoolingConv1d,
    DgcnnSortPoolingWeightedVertices,
    ModelConfig,
    build_model,
)
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn.loss import nll_loss
from repro.nn.optim import Adam


def random_acfg(rng, n, c=11, label=0):
    adjacency = (rng.random((n, n)) < 0.25).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return ACFG(
        adjacency=adjacency,
        attributes=rng.standard_normal((n, c)),
        label=label,
        name=f"g{n}",
    )


def make_config(pooling, **overrides):
    base = dict(
        num_attributes=11,
        num_classes=4,
        pooling=pooling,
        graph_conv_sizes=(8, 8),
        sort_k=5,
        amp_grid=(3, 3),
        conv2d_channels=4,
        conv1d_channels=(4, 8),
        conv1d_kernel=3,
        hidden_size=16,
        dropout=0.1,
        seed=0,
    )
    base.update(overrides)
    return ModelConfig(**base)


class TestModelConfig:
    def test_invalid_pooling(self):
        with pytest.raises(ConfigurationError):
            make_config("global_mean")

    def test_invalid_classes(self):
        with pytest.raises(ConfigurationError):
            make_config("adaptive", num_classes=1)

    def test_build_model_dispatch(self):
        assert isinstance(build_model(make_config("adaptive")), DgcnnAdaptivePooling)
        assert isinstance(
            build_model(make_config("sort_conv1d")), DgcnnSortPoolingConv1d
        )
        assert isinstance(
            build_model(make_config("sort_weighted")),
            DgcnnSortPoolingWeightedVertices,
        )


class TestForwardPass:
    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_log_probabilities(self, pooling, rng):
        model = build_model(make_config(pooling))
        batch = [random_acfg(rng, n) for n in (3, 7, 12)]
        out = model(batch)
        assert out.shape == (3, 4)
        probs = np.exp(out.data)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)

    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_variable_graph_sizes_one_batch(self, pooling, rng):
        """Graphs much smaller and larger than k / the AMP grid mix freely."""
        model = build_model(make_config(pooling))
        batch = [random_acfg(rng, n) for n in (1, 2, 5, 30)]
        assert model(batch).shape == (4, 4)

    def test_empty_batch_rejected(self, rng):
        model = build_model(make_config("adaptive"))
        with pytest.raises(ConfigurationError):
            model([])

    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_batch_independence(self, pooling, rng):
        """A graph's prediction is the same alone or inside a batch."""
        model = build_model(make_config(pooling))
        model.eval()
        graphs = [random_acfg(rng, n) for n in (4, 9)]
        together = model(graphs).data
        alone = [model([g]).data[0] for g in graphs]
        np.testing.assert_allclose(together, np.stack(alone), atol=1e-10)

    def test_predict_interfaces(self, rng):
        model = build_model(make_config("sort_weighted"))
        batch = [random_acfg(rng, 6), random_acfg(rng, 8)]
        probabilities = model.predict_proba(batch)
        assert probabilities.shape == (2, 4)
        predictions = model.predict(batch)
        np.testing.assert_array_equal(predictions, probabilities.argmax(axis=1))

    def test_predict_restores_training_mode(self, rng):
        model = build_model(make_config("adaptive"))
        model.train(True)
        model.predict([random_acfg(rng, 5)])
        assert model.training


class TestTrainability:
    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_loss_decreases(self, pooling, rng):
        """A few Adam steps on a toy problem must reduce the loss."""
        model = build_model(make_config(pooling))
        # Two separable pseudo-families: dense-heavy vs sparse graphs.
        batch = []
        for i in range(8):
            label = i % 2
            n = 6 + 4 * label
            acfg = random_acfg(rng, n, label=label)
            acfg.attributes[:, 0] += 3.0 * label
            batch.append(acfg)
        labels = np.array([a.label for a in batch])
        optimizer = Adam(model.parameters(), lr=0.01)
        first_loss = None
        for _ in range(15):
            optimizer.zero_grad()
            loss = nll_loss(model(batch), labels)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss

    def test_all_parameters_receive_gradients(self, rng):
        for pooling in POOLING_TYPES:
            model = build_model(make_config(pooling, dropout=0.0))
            batch = [random_acfg(rng, 7, label=1), random_acfg(rng, 9, label=0)]
            labels = np.array([1, 0])
            loss = nll_loss(model(batch), labels)
            loss.backward()
            missing = [
                name
                for name, param in model.named_parameters()
                if param.grad is None
            ]
            assert not missing, f"{pooling}: no grad for {missing}"

    def test_seed_reproducibility(self, rng):
        config = make_config("adaptive", seed=42)
        a = build_model(config)
        b = build_model(config)
        batch = [random_acfg(np.random.default_rng(0), 5)]
        a.eval(), b.eval()
        np.testing.assert_array_equal(a(batch).data, b(batch).data)


class TestSortConv1dSmallK:
    def test_k_smaller_than_kernel_still_works(self, rng):
        """conv1d kernel is clamped when k is tiny."""
        model = build_model(make_config("sort_conv1d", sort_k=2, conv1d_kernel=7))
        out = model([random_acfg(rng, 3)])
        assert out.shape == (1, 4)
