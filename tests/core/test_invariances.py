"""Model invariance properties.

SortPooling orders vertices by their *learned feature descriptors*, not
by input order, so the sort-pooling architectures are invariant to the
vertex ordering of the input ACFG (up to ties).  These tests verify that
property — and document that the adaptive-pooling architecture is
order-*sensitive* by design (the AMP grid pools over the vertex
dimension in input order, which for CFGs is address order — a meaningful
signal, not an arbitrary one).
"""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig, build_model
from repro.features.acfg import ACFG


def random_acfg(rng, n=9, c=11):
    adjacency = (rng.random((n, n)) < 0.3).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    attributes = rng.standard_normal((n, c))
    return ACFG(adjacency=adjacency, attributes=attributes)


def permuted(acfg, permutation):
    return ACFG(
        adjacency=acfg.adjacency[np.ix_(permutation, permutation)],
        attributes=acfg.attributes[permutation],
    )


def make_model(pooling, seed=0):
    return build_model(
        ModelConfig(
            num_attributes=11, num_classes=3, pooling=pooling,
            graph_conv_sizes=(8, 8), sort_k=5, amp_grid=(2, 2),
            conv2d_channels=4, conv1d_channels=(4, 8), conv1d_kernel=3,
            hidden_size=16, dropout=0.0, seed=seed,
        )
    )


class TestPermutationInvariance:
    @pytest.mark.parametrize("pooling", ["sort_conv1d", "sort_weighted"])
    def test_sort_pooling_models_are_order_invariant(self, pooling, rng):
        model = make_model(pooling)
        model.eval()
        acfg = random_acfg(rng)
        base = model([acfg]).data
        for seed in range(3):
            permutation = np.random.default_rng(seed).permutation(
                acfg.num_vertices
            )
            shuffled = permuted(acfg, permutation)
            np.testing.assert_allclose(
                model([shuffled]).data, base, atol=1e-9,
                err_msg=f"{pooling} output changed under vertex permutation",
            )

    def test_adaptive_pooling_uses_vertex_order(self, rng):
        """AMP pools the vertex axis in input (address) order: shuffling
        vertices generally changes the output.  This is intentional —
        address order is program layout, a real signal."""
        model = make_model("adaptive")
        model.eval()
        changed = 0
        for seed in range(5):
            acfg = random_acfg(np.random.default_rng(seed), n=12)
            base = model([acfg]).data
            permutation = np.random.default_rng(seed + 100).permutation(12)
            shuffled = permuted(acfg, permutation)
            if not np.allclose(model([shuffled]).data, base, atol=1e-9):
                changed += 1
        assert changed >= 3


class TestStructuralSensitivity:
    @pytest.mark.parametrize(
        "pooling", ["adaptive", "sort_conv1d", "sort_weighted"]
    )
    def test_edges_matter(self, pooling, rng):
        """Same attributes, different structure -> different prediction.

        This is the paper's core claim: structure carries signal that
        attribute aggregation alone would miss."""
        model = make_model(pooling)
        model.eval()
        attributes = rng.standard_normal((8, 11))
        chain = np.zeros((8, 8))
        for i in range(7):
            chain[i, i + 1] = 1.0
        dense = (np.random.default_rng(0).random((8, 8)) < 0.6).astype(float)
        np.fill_diagonal(dense, 0.0)
        out_chain = model([ACFG(adjacency=chain, attributes=attributes)]).data
        out_dense = model([ACFG(adjacency=dense, attributes=attributes)]).data
        assert not np.allclose(out_chain, out_dense, atol=1e-9)

    @pytest.mark.parametrize(
        "pooling", ["adaptive", "sort_conv1d", "sort_weighted"]
    )
    def test_attributes_matter(self, pooling, rng):
        model = make_model(pooling)
        model.eval()
        adjacency = (rng.random((8, 8)) < 0.3).astype(float)
        a = ACFG(adjacency=adjacency, attributes=rng.standard_normal((8, 11)))
        b = ACFG(adjacency=adjacency, attributes=rng.standard_normal((8, 11)))
        assert not np.allclose(model([a]).data, model([b]).data, atol=1e-9)
