"""Tests for the adaptive pooling head (Section III-C, Figure 6)."""

import numpy as np
import pytest

from repro.core.adaptive_pooling import AdaptivePoolingHead
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.tensor import Tensor


class TestAdaptivePoolingHead:
    def test_unifies_variable_vertex_counts(self):
        """The whole point: graphs of any size give the same output shape."""
        head = AdaptivePoolingHead(channels=8, output_grid=(3, 3))
        for n in (3, 5, 17, 100):
            out = head(Tensor(np.random.default_rng(n).standard_normal((n, 7))))
            assert out.shape == (8, 3, 3)

    def test_figure6_both_inputs(self):
        """Figure 6 feeds a 5x7 and a 4x7 Z^{1:h} through 3x3 AMP."""
        head = AdaptivePoolingHead(channels=1, output_grid=(3, 3))
        for n in (5, 4):
            out = head(Tensor(np.zeros((n, 7))))
            assert out.shape == (1, 3, 3)

    def test_gradients_flow(self):
        head = AdaptivePoolingHead(channels=4, output_grid=(2, 2))
        x = Tensor(np.random.default_rng(0).standard_normal((6, 5)), requires_grad=True)
        head(x).sum().backward()
        assert x.grad is not None
        assert head.conv.weight.grad is not None

    def test_rejects_non_2d_input(self):
        head = AdaptivePoolingHead(channels=2)
        with pytest.raises(ShapeError):
            head(Tensor(np.zeros((2, 3, 4))))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AdaptivePoolingHead(channels=0)
        with pytest.raises(ConfigurationError):
            AdaptivePoolingHead(channels=4, output_grid=(0, 3))

    def test_single_vertex_graph(self):
        # Degenerate 1-vertex graph must still pool cleanly.
        head = AdaptivePoolingHead(channels=2, output_grid=(3, 3))
        out = head(Tensor(np.ones((1, 4))))
        assert out.shape == (2, 3, 3)
