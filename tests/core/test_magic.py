"""Tests for the end-to-end MAGIC system."""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig
from repro.core.magic import Magic
from repro.exceptions import ConfigurationError, MagicError
from repro.train.trainer import TrainingConfig

from tests.conftest import SAMPLE_ASM


def small_config(num_classes=9):
    return ModelConfig(
        num_attributes=11,
        num_classes=num_classes,
        pooling="adaptive",
        graph_conv_sizes=(8, 8),
        amp_grid=(2, 2),
        conv2d_channels=4,
        hidden_size=16,
        dropout=0.1,
        seed=0,
    )


@pytest.fixture(scope="module")
def trained_magic(tiny_mskcfg):
    magic = Magic(small_config(), tiny_mskcfg.family_names)
    train, _ = tiny_mskcfg.stratified_split(0.2, seed=0)
    magic.fit(
        train.acfgs,
        training_config=TrainingConfig(epochs=3, batch_size=10, seed=0),
    )
    return magic


# module-scope fixture needs the session dataset; re-export it
@pytest.fixture(scope="module")
def tiny_mskcfg(request):
    from repro.datasets import generate_mskcfg_dataset

    return generate_mskcfg_dataset(total=45, seed=11)


class TestConstruction:
    def test_family_count_must_match(self):
        with pytest.raises(ConfigurationError):
            Magic(small_config(num_classes=9), ["only", "two"])


class TestIngestion:
    def test_acfg_from_asm(self):
        magic = Magic(small_config(), [f"f{i}" for i in range(9)])
        acfg = magic.acfg_from_asm(SAMPLE_ASM, name="s")
        assert acfg.num_vertices == 5
        assert acfg.num_attributes == 11


class TestTrainPredict:
    def test_predict_before_fit_rejected(self, tiny_mskcfg):
        magic = Magic(small_config(), tiny_mskcfg.family_names)
        with pytest.raises(MagicError):
            magic.predict(tiny_mskcfg.acfgs[:2])

    def test_fit_returns_history(self, trained_magic):
        assert trained_magic.history is not None
        assert trained_magic.history.num_epochs == 3

    def test_predict_shapes(self, trained_magic, tiny_mskcfg):
        probabilities = trained_magic.predict_proba(tiny_mskcfg.acfgs[:5])
        assert probabilities.shape == (5, 9)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        predictions = trained_magic.predict(tiny_mskcfg.acfgs[:5])
        assert predictions.shape == (5,)

    def test_predict_family_names(self, trained_magic, tiny_mskcfg):
        families = trained_magic.predict_family(tiny_mskcfg.acfgs[:3])
        assert all(f in tiny_mskcfg.family_names for f in families)

    def test_classify_asm_one_call(self, trained_magic):
        family, probabilities = trained_magic.classify_asm(SAMPLE_ASM)
        assert family in trained_magic.family_names
        assert probabilities.shape == (9,)

    def test_evaluate_report(self, trained_magic, tiny_mskcfg):
        report = trained_magic.evaluate(tiny_mskcfg.acfgs)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.family_names == tiny_mskcfg.family_names

    def test_measure_timing(self, trained_magic):
        timing = trained_magic.measure_timing([SAMPLE_ASM] * 3)
        assert timing.feature_seconds_per_sample > 0
        assert timing.predict_seconds_per_sample > 0

    def test_measure_timing_empty_rejected(self, trained_magic):
        with pytest.raises(MagicError):
            trained_magic.measure_timing([])


class TestPersistence:
    def test_save_load_roundtrip(self, trained_magic, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "model")
        trained_magic.save(directory)
        restored = Magic.load(directory)
        assert restored.family_names == trained_magic.family_names
        original = trained_magic.predict_proba(tiny_mskcfg.acfgs[:4])
        reloaded = restored.predict_proba(tiny_mskcfg.acfgs[:4])
        np.testing.assert_allclose(original, reloaded, atol=1e-12)

    def test_save_before_fit_rejected(self, tiny_mskcfg, tmp_path):
        magic = Magic(small_config(), tiny_mskcfg.family_names)
        with pytest.raises(MagicError):
            magic.save(str(tmp_path / "nope"))

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(MagicError):
            Magic.load(str(tmp_path / "missing"))
