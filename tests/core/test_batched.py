"""Tests for the batch-first execution path.

The key property: the batched production path (GraphBatch + sparse
block-diagonal propagation) is *numerically equivalent* to the per-graph
dense reference path — forward log-probs and the gradients they induce,
for all three pooling variants.
"""

import numpy as np
import pytest

from repro.core.batched import GraphBatch
from repro.core.dgcnn import POOLING_TYPES, ModelConfig, build_model
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn import functional as F
from repro.nn.loss import nll_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.train.batching import BatchCollator


def random_acfg(rng, n, c=11, label=0):
    adjacency = (rng.random((n, n)) < 0.3).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return ACFG(
        adjacency=adjacency,
        attributes=rng.standard_normal((n, c)),
        label=label,
    )


def small_config(pooling, **overrides):
    base = dict(
        num_attributes=11, num_classes=4, pooling=pooling,
        graph_conv_sizes=(8, 8), sort_k=4, amp_grid=(2, 2),
        conv2d_channels=4, conv1d_channels=(4, 8), conv1d_kernel=3,
        hidden_size=16, dropout=0.0, seed=0,
    )
    base.update(overrides)
    return ModelConfig(**base)


class TestGraphBatch:
    def test_structure(self, rng):
        acfgs = [random_acfg(rng, n) for n in (3, 5, 2)]
        batch = GraphBatch(acfgs)
        assert batch.num_graphs == 3
        assert batch.total_vertices == 10
        assert batch.propagation.shape == (10, 10)
        assert batch.attributes.shape == (10, 11)
        np.testing.assert_array_equal(batch.boundaries, [0, 3, 8, 10])

    def test_block_diagonal_matches_individual_operators(self, rng):
        acfgs = [random_acfg(rng, n) for n in (3, 4)]
        batch = GraphBatch(acfgs)
        dense = batch.propagation.toarray()
        np.testing.assert_allclose(dense[:3, :3], acfgs[0].propagation_operator())
        np.testing.assert_allclose(dense[3:, 3:], acfgs[1].propagation_operator())
        # Off-diagonal blocks are zero: graphs do not leak into each other.
        assert np.count_nonzero(dense[:3, 3:]) == 0
        assert np.count_nonzero(dense[3:, :3]) == 0

    def test_operator_is_genuinely_sparse(self, rng):
        """The CSR merge stores only true non-zeros, not dense blocks.

        Regression test for the dense-block assembly bug:
        ``scipy.sparse.block_diag`` keeps explicit zeros when handed
        dense arrays, which inflated nnz from ~(n + |E|) to ~n^2 per
        graph and made the "sparse" path slower than the dense loop.
        """
        acfgs = [random_acfg(rng, n) for n in (6, 9, 4)]
        batch = GraphBatch(acfgs)
        true_nnz = sum(
            np.count_nonzero(a.propagation_operator()) for a in acfgs
        )
        assert batch.propagation.nnz == true_nnz
        total = batch.total_vertices
        assert batch.propagation.nnz < total * total

    def test_labels_collected(self, rng):
        acfgs = [random_acfg(rng, 3, label=2), random_acfg(rng, 4, label=0)]
        np.testing.assert_array_equal(GraphBatch(acfgs).labels, [2, 0])

    def test_labels_none_when_any_missing(self, rng):
        acfgs = [random_acfg(rng, 3), random_acfg(rng, 4)]
        acfgs[1].label = None
        assert GraphBatch(acfgs).labels is None

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphBatch([])

    def test_split_roundtrip(self, rng):
        acfgs = [random_acfg(rng, n) for n in (2, 4)]
        batch = GraphBatch(acfgs)
        stacked = Tensor(batch.attributes)
        pieces = batch.split(stacked)
        np.testing.assert_array_equal(pieces[0].data, acfgs[0].attributes)
        np.testing.assert_array_equal(pieces[1].data, acfgs[1].attributes)

    def test_unnormalized_mode(self, rng):
        acfgs = [random_acfg(rng, 3)]
        batch = GraphBatch(acfgs, normalize_propagation=False)
        assert batch.normalized is False
        np.testing.assert_allclose(
            batch.propagation.toarray(), acfgs[0].augmented_adjacency()
        )

    def test_transpose_cached(self, rng):
        batch = GraphBatch([random_acfg(rng, 5)])
        first = batch.propagation_transpose()
        assert batch.propagation_transpose() is first
        np.testing.assert_allclose(
            first.toarray(), batch.propagation.toarray().T
        )


class TestSparseMatmul:
    def test_forward_matches_dense(self, rng):
        import scipy.sparse

        dense = rng.standard_normal((4, 4)) * (rng.random((4, 4)) < 0.5)
        sparse = scipy.sparse.csr_matrix(dense)
        x = Tensor(rng.standard_normal((4, 3)))
        np.testing.assert_allclose(
            F.sparse_matmul(sparse, x).data, dense @ x.data
        )

    @pytest.mark.parametrize("precompute_transpose", [False, True])
    def test_gradient_matches_dense(self, rng, precompute_transpose):
        import scipy.sparse

        dense = rng.standard_normal((5, 5)) * (rng.random((5, 5)) < 0.4)
        sparse = scipy.sparse.csr_matrix(dense)
        matrix_t = sparse.T.tocsr() if precompute_transpose else None
        x_sparse = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
        x_dense = Tensor(x_sparse.data.copy(), requires_grad=True)
        (F.sparse_matmul(sparse, x_sparse, matrix_t=matrix_t) ** 2).sum().backward()
        ((Tensor(dense) @ x_dense) ** 2).sum().backward()
        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=1e-12)


class TestModelContract:
    def test_forward_accepts_prebuilt_graph_batch(self, rng):
        model = build_model(small_config("sort_weighted"))
        model.eval()
        acfgs = [random_acfg(rng, n) for n in (3, 6)]
        np.testing.assert_array_equal(
            model(model.collate(acfgs)).data, model(acfgs).data
        )

    def test_normalization_mismatch_rejected(self, rng):
        model = build_model(small_config("sort_weighted"))
        batch = GraphBatch([random_acfg(rng, 4)], normalize_propagation=False)
        with pytest.raises(ConfigurationError):
            model(batch)

    def test_reference_path_rejects_graph_batch(self, rng):
        model = build_model(small_config("sort_weighted"))
        batch = model.collate([random_acfg(rng, 4)])
        with pytest.raises(ConfigurationError):
            model.forward_reference(batch)

    def test_retired_flag_warns_and_is_ignored(self):
        with pytest.warns(DeprecationWarning):
            config = small_config("sort_weighted", use_batched_propagation=False)
        # The model built from a legacy config still runs the batched path.
        model = build_model(config)
        assert model.accepts_graph_batch


class TestBatchedEqualsReference:
    """Forward and gradient equivalence, batched vs per-graph reference."""

    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_forward_equivalence(self, pooling, rng):
        model = build_model(small_config(pooling))
        model.eval()
        acfgs = [random_acfg(rng, n) for n in (3, 7, 5)]

        np.testing.assert_allclose(
            model(acfgs).data,
            model.forward_reference(acfgs).data,
            atol=1e-8,
        )

    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_parameters_agree_after_one_optimizer_step(self, pooling, rng):
        """One Adam step via either path lands on the same parameters."""
        config = small_config(pooling)
        batched_model = build_model(config)
        reference_model = build_model(config)
        reference_model.load_state_dict(batched_model.state_dict())
        acfgs = [
            random_acfg(rng, 5, label=1),
            random_acfg(rng, 8, label=0),
            random_acfg(rng, 3, label=2),
        ]
        labels = np.array([a.label for a in acfgs])

        for model, forward in (
            (batched_model, lambda m: m(acfgs)),
            (reference_model, lambda m: m.forward_reference(acfgs)),
        ):
            optimizer = Adam(model.parameters(), lr=1e-2)
            optimizer.zero_grad()
            nll_loss(forward(model), labels).backward()
            optimizer.step()

        batched_state = batched_model.state_dict()
        reference_state = reference_model.state_dict()
        assert batched_state.keys() == reference_state.keys()
        for name in batched_state:
            np.testing.assert_allclose(
                batched_state[name], reference_state[name], atol=1e-8,
                err_msg=f"{pooling}: parameter {name} diverged",
            )

    def test_gradient_flows_through_batched_path(self, rng):
        model = build_model(small_config("sort_weighted", graph_conv_sizes=(6, 6)))
        acfgs = [random_acfg(rng, 5, label=1), random_acfg(rng, 4, label=0)]
        loss = nll_loss(model(acfgs), np.array([1, 0]))
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"


class TestCollatorEquivalence:
    def test_memoized_collate_identical_to_fresh_build(self, rng):
        """A cache hit must return results identical to a fresh build."""
        model = build_model(small_config("adaptive"))
        model.eval()
        acfgs = [random_acfg(rng, n) for n in (4, 6, 3)]
        collator = BatchCollator()

        fresh = GraphBatch(acfgs)
        first = collator(acfgs)
        second = collator(acfgs)
        assert second is first  # memoized across calls (epochs)
        assert collator.hits == 1 and collator.misses == 1

        np.testing.assert_array_equal(
            model(second).data, model(fresh).data
        )
