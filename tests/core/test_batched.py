"""Tests for block-diagonal graph batching.

The key property: the batched path is *numerically identical* to the
per-graph path, forward and backward.
"""

import numpy as np
import pytest

from repro.core.batched import GraphBatch, propagate
from repro.core.dgcnn import POOLING_TYPES, ModelConfig, build_model
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn import functional as F
from repro.nn.loss import nll_loss
from repro.nn.tensor import Tensor


def random_acfg(rng, n, c=11, label=0):
    adjacency = (rng.random((n, n)) < 0.3).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return ACFG(
        adjacency=adjacency,
        attributes=rng.standard_normal((n, c)),
        label=label,
    )


class TestGraphBatch:
    def test_structure(self, rng):
        acfgs = [random_acfg(rng, n) for n in (3, 5, 2)]
        batch = GraphBatch(acfgs)
        assert batch.num_graphs == 3
        assert batch.total_vertices == 10
        assert batch.propagation.shape == (10, 10)
        assert batch.attributes.shape == (10, 11)
        np.testing.assert_array_equal(batch.boundaries, [0, 3, 8, 10])

    def test_block_diagonal_matches_individual_operators(self, rng):
        acfgs = [random_acfg(rng, n) for n in (3, 4)]
        batch = GraphBatch(acfgs)
        dense = batch.propagation.toarray()
        np.testing.assert_allclose(dense[:3, :3], acfgs[0].propagation_operator())
        np.testing.assert_allclose(dense[3:, 3:], acfgs[1].propagation_operator())
        # Off-diagonal blocks are zero: graphs do not leak into each other.
        assert np.count_nonzero(dense[:3, 3:]) == 0
        assert np.count_nonzero(dense[3:, :3]) == 0

    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphBatch([])

    def test_split_roundtrip(self, rng):
        acfgs = [random_acfg(rng, n) for n in (2, 4)]
        batch = GraphBatch(acfgs)
        stacked = Tensor(batch.attributes)
        pieces = batch.split(stacked)
        np.testing.assert_array_equal(pieces[0].data, acfgs[0].attributes)
        np.testing.assert_array_equal(pieces[1].data, acfgs[1].attributes)

    def test_unnormalized_mode(self, rng):
        acfgs = [random_acfg(rng, 3)]
        batch = GraphBatch(acfgs, normalize_propagation=False)
        np.testing.assert_allclose(
            batch.propagation.toarray(), acfgs[0].augmented_adjacency()
        )


class TestSparseMatmul:
    def test_forward_matches_dense(self, rng):
        import scipy.sparse

        dense = rng.standard_normal((4, 4)) * (rng.random((4, 4)) < 0.5)
        sparse = scipy.sparse.csr_matrix(dense)
        x = Tensor(rng.standard_normal((4, 3)))
        np.testing.assert_allclose(
            F.sparse_matmul(sparse, x).data, dense @ x.data
        )

    def test_gradient_matches_dense(self, rng):
        import scipy.sparse

        dense = rng.standard_normal((5, 5)) * (rng.random((5, 5)) < 0.4)
        sparse = scipy.sparse.csr_matrix(dense)
        x_sparse = Tensor(rng.standard_normal((5, 2)), requires_grad=True)
        x_dense = Tensor(x_sparse.data.copy(), requires_grad=True)
        (F.sparse_matmul(sparse, x_sparse) ** 2).sum().backward()
        ((Tensor(dense) @ x_dense) ** 2).sum().backward()
        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=1e-12)


class TestBatchedEqualsPerGraph:
    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_forward_equivalence(self, pooling, rng):
        """Batched forward == per-graph forward, bit for bit."""
        base = dict(
            num_attributes=11, num_classes=4, pooling=pooling,
            graph_conv_sizes=(8, 8), sort_k=4, amp_grid=(2, 2),
            conv2d_channels=4, conv1d_channels=(4, 8), conv1d_kernel=3,
            hidden_size=16, dropout=0.0, seed=0,
        )
        batched_model = build_model(
            ModelConfig(use_batched_propagation=True, **base)
        )
        per_graph_model = build_model(
            ModelConfig(use_batched_propagation=False, **base)
        )
        per_graph_model.load_state_dict(batched_model.state_dict())
        batched_model.eval()
        per_graph_model.eval()
        acfgs = [random_acfg(rng, n) for n in (3, 7, 5)]

        np.testing.assert_allclose(
            batched_model(acfgs).data,
            per_graph_model(acfgs).data,
            atol=1e-10,
        )

    def test_gradient_flows_through_batched_path(self, rng):
        config = ModelConfig(
            num_attributes=11, num_classes=3, pooling="sort_weighted",
            graph_conv_sizes=(6, 6), sort_k=3, hidden_size=8,
            dropout=0.0, seed=0, use_batched_propagation=True,
        )
        model = build_model(config)
        acfgs = [random_acfg(rng, 5, label=1), random_acfg(rng, 4, label=0)]
        loss = nll_loss(model(acfgs), np.array([1, 0]))
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
