"""Tests for the WeightedVertices layer (Section III-B, Figure 5)."""

import numpy as np
import pytest

from repro.core.weighted_vertices import WeightedVertices
from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestEquationThree:
    def test_figure5_worked_example(self):
        """E = f(W x Zsp) with W = [0.4, 0.1, 0.5] as in Figure 5."""
        layer = WeightedVertices(k=3, activation="relu")
        layer.weight.data = np.array([[0.4, 0.1, 0.5]])
        z_sp = np.array([
            [1.0, 2.0, -1.0],
            [0.0, 4.0, 2.0],
            [2.0, -2.0, 6.0],
        ])
        out = layer(Tensor(z_sp)).data
        expected = np.maximum(np.array([[0.4, 0.1, 0.5]]) @ z_sp, 0.0)[0]
        np.testing.assert_allclose(out, expected)

    def test_equivalent_to_single_channel_conv1d(self):
        """The paper's observation: the WeightedVertices layer equals a
        single-channel Conv1D of kernel size k and stride k applied to
        the transposed sort-pooling output (Equations 3-4)."""
        rng = np.random.default_rng(0)
        k, channels = 4, 6
        z_sp = rng.standard_normal((k, channels))
        weights = rng.standard_normal(k)

        layer = WeightedVertices(k=k, activation="relu")
        layer.weight.data = weights[None, :]
        via_layer = layer(Tensor(z_sp)).data

        # Conv1D over the transposed, flattened Zsp^T: signal of length
        # channels*k where each group of k holds one channel's vertices.
        signal = z_sp.T.reshape(1, 1, channels * k)
        conv_w = weights.reshape(1, 1, k)
        via_conv = F.conv1d(Tensor(signal), Tensor(conv_w), stride=k).relu().data
        np.testing.assert_allclose(via_layer, via_conv.reshape(channels))

    def test_output_shape(self):
        layer = WeightedVertices(k=3)
        assert layer(Tensor(np.zeros((3, 7)))).shape == (7,)

    def test_input_shape_validated(self):
        layer = WeightedVertices(k=3)
        with pytest.raises(ShapeError):
            layer(Tensor(np.zeros((4, 7))))
        with pytest.raises(ShapeError):
            layer(Tensor(np.zeros(3)))

    def test_weight_is_trainable(self):
        layer = WeightedVertices(k=2)
        out = layer(Tensor(np.ones((2, 3))))
        out.sum().backward()
        assert layer.weight.grad is not None

    def test_tanh_activation(self):
        layer = WeightedVertices(k=2, activation="tanh")
        out = layer(Tensor(np.full((2, 3), 100.0)))
        assert (np.abs(out.data) <= 1.0).all()

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            WeightedVertices(k=0)
        with pytest.raises(ConfigurationError):
            WeightedVertices(k=2, activation="gelu")
