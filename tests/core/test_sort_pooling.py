"""Tests for SortPooling (Section III-A-3, Figure 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sort_pooling import (
    SortPooling,
    resolve_sort_pooling_k,
    sort_vertex_order,
)
from repro.exceptions import ConfigurationError
from repro.nn.tensor import Tensor


class TestSortOrder:
    def test_primary_key_is_last_column_descending(self):
        features = np.array([[0.0, 1.0], [0.0, 3.0], [0.0, 2.0]])
        order = sort_vertex_order(features)
        assert list(order) == [1, 2, 0]

    def test_ties_broken_by_earlier_columns(self):
        """Figure 4: ties on the last channel continue at the previous."""
        features = np.array([
            [1.0, 5.0],
            [3.0, 5.0],   # ties with row 0 on last col; larger first col wins
            [2.0, 9.0],
        ])
        order = sort_vertex_order(features)
        assert list(order) == [2, 1, 0]

    def test_full_tie_is_stable_by_construction(self):
        features = np.ones((4, 3))
        order = sort_vertex_order(features)
        assert sorted(order.tolist()) == [0, 1, 2, 3]

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            sort_vertex_order(np.zeros(5))

    @given(
        n=st.integers(1, 12),
        c=st.integers(1, 5),
        seed=st.integers(0, 5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_order_is_a_permutation_and_sorted(self, n, c, seed):
        """Property: output is a permutation; last column descends."""
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((n, c))
        order = sort_vertex_order(features)
        assert sorted(order.tolist()) == list(range(n))
        last = features[order, -1]
        assert (np.diff(last) <= 1e-12).all()


class TestResolveK:
    def test_quantile_rule(self):
        sizes = list(range(1, 101))  # 1..100
        assert resolve_sort_pooling_k(sizes, 0.64) == 64
        assert resolve_sort_pooling_k(sizes, 0.2) == 20

    def test_minimum_floor(self):
        assert resolve_sort_pooling_k([1, 1, 1], 0.2, minimum=5) == 5

    def test_ratio_one_is_max_size(self):
        assert resolve_sort_pooling_k([3, 9, 6], 1.0) == 9

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            resolve_sort_pooling_k([], 0.5)
        with pytest.raises(ConfigurationError):
            resolve_sort_pooling_k([5], 0.0)
        with pytest.raises(ConfigurationError):
            resolve_sort_pooling_k([5], 1.5)


class TestSortPoolingLayer:
    def test_truncates_to_k(self):
        """Figure 4: n=5, k=3 keeps the 3 'largest' rows."""
        features = np.array([
            [0.0, 1.0],
            [0.0, 5.0],
            [0.0, 3.0],
            [0.0, 4.0],
            [0.0, 2.0],
        ])
        out = SortPooling(k=3)(Tensor(features))
        np.testing.assert_array_equal(out.data[:, 1], [5.0, 4.0, 3.0])

    def test_pads_with_zeros(self):
        features = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = SortPooling(k=5)(Tensor(features))
        assert out.shape == (5, 2)
        np.testing.assert_array_equal(out.data[2:], 0.0)

    def test_exact_size_passthrough_sorted(self):
        features = np.array([[0.0, 1.0], [0.0, 2.0]])
        out = SortPooling(k=2)(Tensor(features))
        np.testing.assert_array_equal(out.data[:, 1], [2.0, 1.0])

    def test_output_size_invariant(self):
        """The layer unifies any n to exactly k rows."""
        layer = SortPooling(k=4)
        for n in (1, 3, 4, 9, 40):
            out = layer(Tensor(np.random.default_rng(n).standard_normal((n, 3))))
            assert out.shape == (4, 3)

    def test_gradient_routes_to_kept_rows_only(self):
        features = Tensor(
            np.array([[0.0, 1.0], [0.0, 5.0], [0.0, 3.0]]), requires_grad=True
        )
        out = SortPooling(k=2)(features)
        out.sum().backward()
        # Rows 1 (5.0) and 2 (3.0) kept; row 0 dropped.
        np.testing.assert_array_equal(features.grad[0], [0.0, 0.0])
        assert np.abs(features.grad[1]).sum() > 0
        assert np.abs(features.grad[2]).sum() > 0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            SortPooling(k=0)
