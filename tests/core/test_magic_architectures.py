"""Persistence and prediction across all three architectures."""

import numpy as np
import pytest

from repro.core.dgcnn import POOLING_TYPES, ModelConfig
from repro.core.magic import Magic
from repro.features.acfg import ACFG
from repro.train.trainer import TrainingConfig


def make_acfgs(rng, count=10, num_classes=3):
    acfgs = []
    for i in range(count):
        n = int(rng.integers(3, 8))
        acfgs.append(ACFG(
            adjacency=(rng.random((n, n)) < 0.3).astype(float),
            attributes=rng.standard_normal((n, 11)) + (i % num_classes),
            label=i % num_classes,
            name=f"s{i}",
        ))
    return acfgs


@pytest.mark.parametrize("pooling", POOLING_TYPES)
class TestAllArchitectures:
    def make_magic(self, pooling):
        config = ModelConfig(
            num_attributes=11, num_classes=3, pooling=pooling,
            graph_conv_sizes=(6, 6), sort_k=4, amp_grid=(2, 2),
            conv2d_channels=4, conv1d_channels=(4, 8), conv1d_kernel=3,
            hidden_size=8, dropout=0.1, seed=0,
        )
        return Magic(config, ["a", "b", "c"])

    def test_fit_predict_save_load(self, pooling, rng, tmp_path):
        magic = self.make_magic(pooling)
        acfgs = make_acfgs(rng)
        magic.fit(acfgs, training_config=TrainingConfig(epochs=1, batch_size=5))
        predictions = magic.predict(acfgs[:4])
        assert predictions.shape == (4,)

        directory = str(tmp_path / pooling)
        magic.save(directory)
        restored = Magic.load(directory)
        assert restored.model_config.pooling == pooling
        np.testing.assert_allclose(
            magic.predict_proba(acfgs[:4]),
            restored.predict_proba(acfgs[:4]),
            atol=1e-12,
        )

    def test_config_flags_survive_roundtrip(self, pooling, rng, tmp_path):
        magic = self.make_magic(pooling)
        acfgs = make_acfgs(rng, count=6)
        magic.fit(acfgs, training_config=TrainingConfig(epochs=1, batch_size=6))
        directory = str(tmp_path / f"{pooling}-flags")
        magic.save(directory)
        restored = Magic.load(directory)
        assert restored.model_config.normalize_propagation is True
        assert restored.model_config.graph_conv_sizes == (6, 6)

    def test_retired_flag_not_persisted(self, pooling, rng, tmp_path):
        """New saves must not record the retired batching flag."""
        import json
        import os

        magic = self.make_magic(pooling)
        acfgs = make_acfgs(rng, count=6)
        magic.fit(acfgs, training_config=TrainingConfig(epochs=1, batch_size=6))
        directory = str(tmp_path / f"{pooling}-retired")
        magic.save(directory)
        with open(os.path.join(directory, "magic.json")) as fh:
            meta = json.load(fh)
        assert "use_batched_propagation" not in meta["model_config"]

    def test_legacy_save_with_retired_flag_loads(self, pooling, rng, tmp_path):
        """Archives persisted before the batch-first refactor still load."""
        import json
        import os
        import warnings

        magic = self.make_magic(pooling)
        acfgs = make_acfgs(rng, count=6)
        magic.fit(acfgs, training_config=TrainingConfig(epochs=1, batch_size=6))
        directory = str(tmp_path / f"{pooling}-legacy")
        magic.save(directory)
        meta_path = os.path.join(directory, "magic.json")
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["model_config"]["use_batched_propagation"] = False
        with open(meta_path, "w") as fh:
            json.dump(meta, fh)

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the legacy key must load quietly
            restored = Magic.load(directory)
        np.testing.assert_allclose(
            magic.predict_proba(acfgs[:3]),
            restored.predict_proba(acfgs[:3]),
            atol=1e-12,
        )
