"""Tests for graph convolution (Equation 1, Figures 2-3)."""

import numpy as np
import pytest

from repro.core.graph_conv import GraphConvolution, GraphConvolutionStack
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.nn.tensor import Tensor


def sample_graph_acfg():
    """A 5-vertex directed graph with 2 attribute channels, in the style
    of the paper's worked example (Figure 2)."""
    adjacency = np.zeros((5, 5))
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 1)]
    for src, dst in edges:
        adjacency[src, dst] = 1.0
    attributes = np.array(
        [[1.0, 2.0], [0.0, 1.0], [3.0, -1.0], [2.0, 2.0], [-1.0, 0.5]]
    )
    return ACFG(adjacency=adjacency, attributes=attributes, name="g")


class TestEquationOne:
    def test_single_layer_matches_manual_formula(self):
        """Z1 = f(D̂^-1 Â X W) computed with raw numpy must agree."""
        acfg = sample_graph_acfg()
        layer = GraphConvolution(2, 3, activation="relu", rng=np.random.default_rng(0))
        out = layer(acfg.propagation_operator(), Tensor(acfg.attributes))

        augmented = acfg.adjacency + np.eye(5)
        degree_inverse = np.diag(1.0 / augmented.sum(axis=1))
        expected = degree_inverse @ augmented @ acfg.attributes @ layer.weight.data
        expected = np.maximum(expected, 0.0)
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_worked_example_weights(self):
        """With the paper's W1 = [[1,0,1],[0,1,0]] and ReLU, the layer is
        exactly row-normalized neighborhood averaging of (F1, F2, F1)."""
        acfg = sample_graph_acfg()
        layer = GraphConvolution(2, 3, activation="relu")
        layer.weight.data = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        out = layer(acfg.propagation_operator(), Tensor(acfg.attributes)).data
        # Columns 0 and 2 must be identical (both propagate channel F1).
        np.testing.assert_allclose(out[:, 0], out[:, 2])

    def test_isolated_vertex_keeps_own_attributes(self):
        # With no edges, propagation is the identity: Z1 = f(X W).
        acfg = ACFG(adjacency=np.zeros((3, 3)), attributes=np.eye(3))
        layer = GraphConvolution(3, 3, activation="relu")
        layer.weight.data = np.eye(3)
        out = layer(acfg.propagation_operator(), Tensor(acfg.attributes))
        np.testing.assert_allclose(out.data, np.eye(3))

    def test_tanh_activation(self):
        acfg = sample_graph_acfg()
        layer = GraphConvolution(2, 2, activation="tanh")
        out = layer(acfg.propagation_operator(), Tensor(acfg.attributes))
        assert (np.abs(out.data) <= 1.0).all()

    def test_invalid_activation(self):
        with pytest.raises(ConfigurationError):
            GraphConvolution(2, 2, activation="softplus")


class TestStack:
    def test_concatenated_output_width(self):
        """Z^{1:h} has sum(c_t) columns (Section III-A-3)."""
        acfg = sample_graph_acfg()
        stack = GraphConvolutionStack(2, (32, 32, 32, 32))
        assert stack.total_channels == 128
        out = stack(acfg)
        assert out.shape == (5, 128)

    def test_asymmetric_sizes(self):
        acfg = sample_graph_acfg()
        stack = GraphConvolutionStack(2, (128, 64, 32, 32))
        assert stack(acfg).shape == (5, 256)

    def test_layer_chaining_widths(self):
        stack = GraphConvolutionStack(11, (8, 4, 2))
        assert stack.layer(0).in_channels == 11
        assert stack.layer(1).in_channels == 8
        assert stack.layer(2).in_channels == 4

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphConvolutionStack(2, ())

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphConvolutionStack(2, (8, 0))

    def test_gradients_reach_all_layers(self):
        acfg = sample_graph_acfg()
        stack = GraphConvolutionStack(2, (4, 4))
        out = stack(acfg)
        out.sum().backward()
        for index in range(stack.num_layers):
            assert stack.layer(index).weight.grad is not None
            assert np.abs(stack.layer(index).weight.grad).sum() > 0

    def test_breadth_first_propagation_reach(self):
        """After t layers a vertex's attributes have propagated along
        directed paths of length <= t (BFS fashion, Section III-A-2)."""
        # Chain 0 -> 1 -> 2; only vertex 0 has a nonzero attribute.
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 2] = 1.0
        attributes = np.array([[1.0], [0.0], [0.0]])
        acfg = ACFG(adjacency=adjacency, attributes=attributes)
        propagation = acfg.propagation_operator()

        layer = GraphConvolution(1, 1, activation="relu")
        layer.weight.data = np.array([[1.0]])
        z1 = layer(propagation, Tensor(acfg.attributes))
        # Propagation here is along *incoming* information: row i mixes
        # the vertices i points to, plus itself.  Vertex 2 has no path of
        # length 1 from vertex 0's attribute holder... verify reachability:
        z2 = layer(propagation, z1)
        # Vertex 0's signal reaches vertex 0 at every depth (self-loop).
        assert z1.data[0, 0] > 0
        assert z2.data[0, 0] > 0
