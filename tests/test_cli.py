"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main

from tests.conftest import SAMPLE_ASM


@pytest.fixture
def listing_file(tmp_path):
    path = tmp_path / "sample.asm"
    path.write_text(SAMPLE_ASM)
    return str(path)


class TestInfo:
    def test_prints_metrics(self, listing_file, capsys):
        assert main(["info", listing_file]) == 0
        out = capsys.readouterr().out
        assert "num_vertices" in out
        assert "cyclomatic_complexity" in out

    def test_writes_dot(self, listing_file, tmp_path):
        dot_path = str(tmp_path / "out.dot")
        assert main(["info", listing_file, "--dot", dot_path]) == 0
        with open(dot_path) as handle:
            assert handle.read().startswith("digraph")


class TestExtract:
    def test_extracts_json(self, listing_file, tmp_path, capsys):
        output = str(tmp_path / "cfgs")
        assert main(["extract", listing_file, "--output", output]) == 0
        assert os.path.exists(os.path.join(output, "sample.json"))

    def test_failure_exit_code(self, tmp_path):
        bad = tmp_path / "bad.asm"
        bad.write_text("")  # empty program
        output = str(tmp_path / "cfgs")
        assert main(["extract", str(bad), "--output", output]) == 1

    def test_failure_reports_kind(self, tmp_path, capsys):
        bad = tmp_path / "bad.asm"
        bad.write_text("")
        assert main(["extract", str(bad),
                     "--output", str(tmp_path / "cfgs")]) == 1
        assert "[parse]" in capsys.readouterr().err

    def test_parallel_extraction(self, listing_file, tmp_path):
        output = str(tmp_path / "cfgs")
        assert main(["extract", listing_file, "--output", output,
                     "--n-jobs", "2", "--timeout", "30"]) == 0
        assert os.path.exists(os.path.join(output, "sample.json"))

    def test_max_vertices_guard(self, listing_file, tmp_path, capsys):
        output = str(tmp_path / "cfgs")
        assert main(["extract", listing_file, "--output", output,
                     "--max-vertices", "1"]) == 1
        assert "[oversize]" in capsys.readouterr().err

    def test_journal_and_resume(self, listing_file, tmp_path, capsys):
        output = str(tmp_path / "cfgs")
        journal = str(tmp_path / "extract.jsonl")
        assert main(["extract", listing_file, "--output", output,
                     "--journal", journal]) == 0
        assert os.path.exists(journal)
        capsys.readouterr()
        assert main(["extract", listing_file, "--output", output,
                     "--journal", journal, "--resume"]) == 0
        assert "resumed" in capsys.readouterr().out

    def test_quarantine_flag(self, tmp_path):
        bad = tmp_path / "bad.asm"
        bad.write_text("")
        quarantine = str(tmp_path / "quarantine")
        assert main(["extract", str(bad),
                     "--output", str(tmp_path / "cfgs"),
                     "--quarantine", quarantine]) == 1
        assert len(os.listdir(quarantine)) == 1


class TestTrainPredict:
    def test_train_then_predict(self, tmp_path, listing_file, capsys):
        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--dataset", "mskcfg", "--total", "36",
            "--epochs", "1", "--pooling", "sort_weighted",
            "--model-dir", model_dir,
        ])
        assert code == 0
        assert os.path.exists(os.path.join(model_dir, "magic.json"))

        capsys.readouterr()
        assert main(["predict", "--model-dir", model_dir, listing_file]) == 0
        out = capsys.readouterr().out
        assert "confidence" in out

    def test_predict_on_cfg_json(self, tmp_path, listing_file, capsys):
        model_dir = str(tmp_path / "model")
        main(["train", "--dataset", "mskcfg", "--total", "36",
              "--epochs", "1", "--pooling", "sort_weighted",
              "--model-dir", model_dir])
        cfg_dir = str(tmp_path / "cfgs")
        main(["extract", listing_file, "--output", cfg_dir])
        capsys.readouterr()
        json_path = os.path.join(cfg_dir, "sample.json")
        assert main(["predict", "--model-dir", model_dir, json_path]) == 0
        assert "confidence" in capsys.readouterr().out

    def test_train_on_cfg_directory(self, tmp_path, capsys):
        # Build a tiny <family>__<id>.json corpus via extract + rename.
        from repro.datasets import generate_mskcfg_listings

        cfg_dir = tmp_path / "corpus"
        cfg_dir.mkdir()
        listings = generate_mskcfg_listings(total=18, seed=1,
                                            minimum_per_family=2)
        from repro.cfg import build_cfg_from_text, save_cfg

        for name, text, label in listings:
            family = name.rsplit("_", 1)[0].replace(".", "_")
            cfg = build_cfg_from_text(text, name=name)
            save_cfg(cfg, str(cfg_dir / f"{family}__{name}.json"))

        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--cfg-dir", str(cfg_dir), "--epochs", "1",
            "--pooling", "sort_weighted", "--model-dir", model_dir,
        ])
        assert code == 0

    def test_missing_model_dir_errors(self, listing_file, capsys):
        assert main(["predict", "--model-dir", "/nonexistent",
                     listing_file]) == 2


class TestClassify:
    @pytest.fixture(scope="class")
    def published(self, tmp_path_factory):
        """Train once for the class: a registry with ``demo@v1`` plus the
        plain (legacy) model directory."""
        registry = str(tmp_path_factory.mktemp("registry"))
        model_dir = str(tmp_path_factory.mktemp("models") / "demo")
        code = main([
            "train", "--dataset", "mskcfg", "--total", "36",
            "--epochs", "1", "--pooling", "sort_weighted",
            "--model-dir", model_dir,
            "--registry", registry, "--model-name", "demo",
        ])
        assert code == 0
        return registry, model_dir

    def test_train_publishes_archive(self, published):
        registry, _ = published
        assert os.path.exists(
            os.path.join(registry, "demo", "v1", "archive.json")
        )

    def test_classify_from_registry(self, published, listing_file, capsys):
        registry, _ = published
        capsys.readouterr()
        code = main(["classify", "--registry", registry, "--model", "demo",
                     listing_file])
        assert code == 0
        assert "confidence" in capsys.readouterr().out

    def test_classify_pinned_version(self, published, listing_file, capsys):
        registry, _ = published
        capsys.readouterr()
        assert main(["classify", "--registry", registry,
                     "--model", "demo@v1", listing_file]) == 0
        assert "confidence" in capsys.readouterr().out

    def test_bad_listing_reports_kind_not_poisoning_batch(
        self, published, listing_file, tmp_path, capsys
    ):
        registry, _ = published
        bad = tmp_path / "bad.asm"
        bad.write_text("")
        capsys.readouterr()
        code = main(["classify", "--registry", registry, "--model", "demo",
                     listing_file, str(bad)])
        assert code == 1
        captured = capsys.readouterr()
        assert "[parse]" in captured.err
        # The good neighbor was still classified.
        assert "confidence" in captured.out

    def test_oversize_guard(self, published, listing_file, capsys):
        registry, _ = published
        capsys.readouterr()
        assert main(["classify", "--registry", registry, "--model", "demo",
                     "--max-vertices", "1", listing_file]) == 1
        assert "[oversize]" in capsys.readouterr().err

    def test_duplicate_listing_hits_cache(self, published, listing_file,
                                          tmp_path, capsys):
        registry, _ = published
        twin = tmp_path / "twin.asm"
        twin.write_text(open(listing_file).read())
        capsys.readouterr()
        assert main(["classify", "--registry", registry, "--model", "demo",
                     listing_file, str(twin)]) == 0
        assert "(cached)" in capsys.readouterr().out

    def test_cache_size_flag_reaches_the_engine(self, published):
        from repro.cli import _serving_engine, build_parser

        registry, _ = published
        base = ["classify", "--registry", registry, "--model", "demo"]
        sized = _serving_engine(build_parser().parse_args(
            base + ["--cache-size", "0", "x.asm"]
        ))
        assert sized.cache_info() == {"entries": 0, "bound": 0}
        default = _serving_engine(build_parser().parse_args(
            base + ["x.asm"]
        ))
        assert default.cache_info()["bound"] == 1024

    def test_similar_threshold_reaches_the_engine(self, published):
        from repro.cli import _serving_engine, build_parser

        registry, _ = published
        engine = _serving_engine(build_parser().parse_args(
            ["classify", "--registry", registry, "--model", "demo",
             "--similar-threshold", "0.45", "--fingerprint-iterations", "2",
             "x.asm"]
        ))
        info = engine.cache_info()["similarity"]
        assert info["threshold"] == pytest.approx(0.45)
        assert info["iterations"] == 2

    def test_similar_hits_are_flagged_in_the_output(
        self, published, tmp_path, capsys, monkeypatch
    ):
        # The similarity tier only serves *remembered* predictions, so a
        # warm engine stands in for earlier traffic and the CLI call
        # classifies just the near-duplicate.
        import repro.cli as cli_module
        from repro.datasets.mskcfg import (
            MSKCFG_PROFILES,
            generate_mskcfg_sample,
        )
        from repro.datasets.synthetic_asm import ObfuscationKnobs
        from repro.serve import InferenceEngine

        registry, _ = published
        _, base_text, _ = generate_mskcfg_sample("Ramnit", 50, seed=0)
        knobs = ObfuscationKnobs(
            junk_probability=MSKCFG_PROFILES["Ramnit"].junk_probability
            + 0.25
        )
        _, variant_text, _ = generate_mskcfg_sample(
            "Ramnit", 50, seed=0, knobs=knobs
        )
        engine = InferenceEngine.from_registry(
            registry, "demo", similar_threshold=0.45
        )
        engine.classify_text(base_text, "base")
        monkeypatch.setattr(
            cli_module, "_serving_engine", lambda args: engine
        )
        variant = tmp_path / "variant.asm"
        variant.write_text(variant_text)
        capsys.readouterr()
        assert main(["classify", "--registry", registry, "--model", "demo",
                     "--similar-threshold", "0.45", str(variant)]) == 0
        out = capsys.readouterr().out
        assert "(similar " in out
        assert "(cached)" not in out

    def test_serve_similarity_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--registry", "r", "--model", "demo",
             "--cache-size", "64", "--similar-threshold", "0.6",
             "--fingerprint-iterations", "2"]
        )
        assert args.cache_size == 64
        assert args.similar_threshold == 0.6  # repro: allow[float-equality] — argparse parses the literal, bit-exact
        assert args.fingerprint_iterations == 2
        # All three default to "engine decides" / tier off.
        defaults = build_parser().parse_args(
            ["serve", "--registry", "r", "--model", "demo"]
        )
        assert defaults.cache_size is None
        assert defaults.similar_threshold is None
        assert defaults.fingerprint_iterations is None

    def test_legacy_model_dir_warns_but_classifies(
        self, published, listing_file, capsys
    ):
        _, model_dir = published
        capsys.readouterr()
        with pytest.warns(UserWarning, match="legacy model archive"):
            code = main(["classify", "--model-dir", model_dir, listing_file])
        assert code == 0
        assert "confidence" in capsys.readouterr().out

    def test_missing_model_source_errors(self, listing_file, capsys):
        assert main(["classify", listing_file]) == 2
        assert "--registry" in capsys.readouterr().err

    def test_serve_parser_wiring(self):
        from repro.cli import build_parser, cmd_serve

        args = build_parser().parse_args(
            ["serve", "--registry", "r", "--model", "demo",
             "--port", "0", "--max-batch-size", "8", "--max-wait-ms", "2"]
        )
        assert args.func is cmd_serve
        assert (args.port, args.max_batch_size, args.max_wait_ms) == (0, 8, 2.0)
        # Single-process serving is the default: fleet mode is opt-in.
        assert args.workers == 0

    def test_serve_fleet_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--registry", "r", "--model", "demo@v3",
             "--workers", "4", "--batch-timeout", "15",
             "--request-timeout", "45"]
        )
        assert (args.workers, args.batch_timeout, args.request_timeout) == (
            4, 15.0, 45.0
        )

    def test_serve_fleet_requires_a_registry_model(self, listing_file,
                                                   capsys):
        # Fleet workers load replicas from the registry; a bare model
        # directory cannot be fanned out.
        assert main(["serve", "--model-dir", "somewhere",
                     "--workers", "2"]) == 2
        assert "registry" in capsys.readouterr().err.lower()

    def test_rollout_parser_wiring(self):
        from repro.cli import build_parser, cmd_rollout

        args = build_parser().parse_args(
            ["rollout", "start", "--version", "v2",
             "--shadow-fraction", "0.5", "--min-samples", "10",
             "--manual", "--url", "http://127.0.0.1:9000"]
        )
        assert args.func is cmd_rollout
        assert args.action == "start"
        assert (args.version, args.shadow_fraction, args.min_samples) == (
            "v2", 0.5, 10
        )
        assert args.manual
        for action in ("status", "promote", "rollback"):
            assert build_parser().parse_args(
                ["rollout", action]
            ).action == action


class TestDedup:
    @pytest.fixture()
    def corpus_dir(self, tmp_path):
        """A dataset cache with one junk-code near-duplicate inside."""
        from repro.datasets.cache import save_dataset
        from repro.datasets.loader import MalwareDataset
        from repro.datasets.mskcfg import (
            MSKCFG_PROFILES,
            generate_mskcfg_sample,
        )
        from repro.datasets.synthetic_asm import ObfuscationKnobs
        from repro.features.pipeline import AcfgPipeline

        knobs = ObfuscationKnobs(
            junk_probability=MSKCFG_PROFILES["Ramnit"].junk_probability
            + 0.2
        )
        texts = [
            generate_mskcfg_sample("Ramnit", 0, seed=0),
            generate_mskcfg_sample("Lollipop", 0, seed=0),
            generate_mskcfg_sample("Ramnit", 0, seed=0, knobs=knobs),
        ]
        named = [
            (name if i < 2 else name + "__variant", text, 0)
            for i, (name, text, _) in enumerate(texts)
        ]
        result = AcfgPipeline().extract_from_texts(named)
        directory = str(tmp_path / "cache")
        save_dataset(
            MalwareDataset(acfgs=result.acfgs, family_names=["all"]),
            directory,
        )
        return directory

    def test_report_lists_duplicates_and_exits_nonzero(
        self, corpus_dir, capsys
    ):
        assert main(["dedup", corpus_dir]) == 1
        captured = capsys.readouterr()
        assert "DROPPED Ramnit_00000__variant [near-duplicate]:" in (
            captured.err
        )
        assert "estimated Jaccard" in captured.err
        assert "1 near-duplicates" in captured.out

    def test_apply_rewrites_the_cache_and_a_rerun_is_clean(
        self, corpus_dir, capsys
    ):
        from repro.datasets.cache import load_dataset

        assert main(["dedup", corpus_dir, "--apply"]) == 0
        assert "rewrote" in capsys.readouterr().out
        assert len(load_dataset(corpus_dir).acfgs) == 2
        assert main(["dedup", corpus_dir]) == 0
        captured = capsys.readouterr()
        assert "DROPPED" not in captured.err
        assert "0 near-duplicates" in captured.out

    def test_output_writes_the_cluster_report(
        self, corpus_dir, tmp_path, capsys
    ):
        report_path = str(tmp_path / "report.json")
        main(["dedup", corpus_dir, "--output", report_path])
        with open(report_path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["total"] == 3
        assert report["dropped"] == 1
        assert report["clusters"][0]["keeper"] == "Ramnit_00000"

    def test_strict_threshold_finds_nothing(self, corpus_dir, capsys):
        assert main(["dedup", corpus_dir, "--threshold", "0.999"]) == 0
        assert "0 near-duplicates" in capsys.readouterr().out


class TestSweep:
    def test_sweep_writes_ranking_and_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        output = str(tmp_path / "ranking.json")
        code = main([
            "sweep", "--dataset", "mskcfg", "--total", "24",
            "--settings", "1", "--epochs", "1", "--folds", "2",
            "--hidden-size", "8", "--journal", journal, "--output", output,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ranking" in out
        assert os.path.exists(journal)
        with open(output) as handle:
            ranking = json.load(handle)["ranking"]
        assert len(ranking) == 1
        assert ranking[0]["rank"] == 1
        assert len(ranking[0]["fold_validation_losses"]) == 2
