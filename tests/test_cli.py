"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main

from tests.conftest import SAMPLE_ASM


@pytest.fixture
def listing_file(tmp_path):
    path = tmp_path / "sample.asm"
    path.write_text(SAMPLE_ASM)
    return str(path)


class TestInfo:
    def test_prints_metrics(self, listing_file, capsys):
        assert main(["info", listing_file]) == 0
        out = capsys.readouterr().out
        assert "num_vertices" in out
        assert "cyclomatic_complexity" in out

    def test_writes_dot(self, listing_file, tmp_path):
        dot_path = str(tmp_path / "out.dot")
        assert main(["info", listing_file, "--dot", dot_path]) == 0
        with open(dot_path) as handle:
            assert handle.read().startswith("digraph")


class TestExtract:
    def test_extracts_json(self, listing_file, tmp_path, capsys):
        output = str(tmp_path / "cfgs")
        assert main(["extract", listing_file, "--output", output]) == 0
        assert os.path.exists(os.path.join(output, "sample.json"))

    def test_failure_exit_code(self, tmp_path):
        bad = tmp_path / "bad.asm"
        bad.write_text("")  # empty program
        output = str(tmp_path / "cfgs")
        assert main(["extract", str(bad), "--output", output]) == 1

    def test_failure_reports_kind(self, tmp_path, capsys):
        bad = tmp_path / "bad.asm"
        bad.write_text("")
        assert main(["extract", str(bad),
                     "--output", str(tmp_path / "cfgs")]) == 1
        assert "[parse]" in capsys.readouterr().err

    def test_parallel_extraction(self, listing_file, tmp_path):
        output = str(tmp_path / "cfgs")
        assert main(["extract", listing_file, "--output", output,
                     "--n-jobs", "2", "--timeout", "30"]) == 0
        assert os.path.exists(os.path.join(output, "sample.json"))

    def test_max_vertices_guard(self, listing_file, tmp_path, capsys):
        output = str(tmp_path / "cfgs")
        assert main(["extract", listing_file, "--output", output,
                     "--max-vertices", "1"]) == 1
        assert "[oversize]" in capsys.readouterr().err

    def test_journal_and_resume(self, listing_file, tmp_path, capsys):
        output = str(tmp_path / "cfgs")
        journal = str(tmp_path / "extract.jsonl")
        assert main(["extract", listing_file, "--output", output,
                     "--journal", journal]) == 0
        assert os.path.exists(journal)
        capsys.readouterr()
        assert main(["extract", listing_file, "--output", output,
                     "--journal", journal, "--resume"]) == 0
        assert "resumed" in capsys.readouterr().out

    def test_quarantine_flag(self, tmp_path):
        bad = tmp_path / "bad.asm"
        bad.write_text("")
        quarantine = str(tmp_path / "quarantine")
        assert main(["extract", str(bad),
                     "--output", str(tmp_path / "cfgs"),
                     "--quarantine", quarantine]) == 1
        assert len(os.listdir(quarantine)) == 1


class TestTrainPredict:
    def test_train_then_predict(self, tmp_path, listing_file, capsys):
        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--dataset", "mskcfg", "--total", "36",
            "--epochs", "1", "--pooling", "sort_weighted",
            "--model-dir", model_dir,
        ])
        assert code == 0
        assert os.path.exists(os.path.join(model_dir, "magic.json"))

        capsys.readouterr()
        assert main(["predict", "--model-dir", model_dir, listing_file]) == 0
        out = capsys.readouterr().out
        assert "confidence" in out

    def test_predict_on_cfg_json(self, tmp_path, listing_file, capsys):
        model_dir = str(tmp_path / "model")
        main(["train", "--dataset", "mskcfg", "--total", "36",
              "--epochs", "1", "--pooling", "sort_weighted",
              "--model-dir", model_dir])
        cfg_dir = str(tmp_path / "cfgs")
        main(["extract", listing_file, "--output", cfg_dir])
        capsys.readouterr()
        json_path = os.path.join(cfg_dir, "sample.json")
        assert main(["predict", "--model-dir", model_dir, json_path]) == 0
        assert "confidence" in capsys.readouterr().out

    def test_train_on_cfg_directory(self, tmp_path, capsys):
        # Build a tiny <family>__<id>.json corpus via extract + rename.
        from repro.datasets import generate_mskcfg_listings

        cfg_dir = tmp_path / "corpus"
        cfg_dir.mkdir()
        listings = generate_mskcfg_listings(total=18, seed=1,
                                            minimum_per_family=2)
        from repro.cfg import build_cfg_from_text, save_cfg

        for name, text, label in listings:
            family = name.rsplit("_", 1)[0].replace(".", "_")
            cfg = build_cfg_from_text(text, name=name)
            save_cfg(cfg, str(cfg_dir / f"{family}__{name}.json"))

        model_dir = str(tmp_path / "model")
        code = main([
            "train", "--cfg-dir", str(cfg_dir), "--epochs", "1",
            "--pooling", "sort_weighted", "--model-dir", model_dir,
        ])
        assert code == 0

    def test_missing_model_dir_errors(self, listing_file, capsys):
        assert main(["predict", "--model-dir", "/nonexistent",
                     listing_file]) == 2


class TestSweep:
    def test_sweep_writes_ranking_and_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        output = str(tmp_path / "ranking.json")
        code = main([
            "sweep", "--dataset", "mskcfg", "--total", "24",
            "--settings", "1", "--epochs", "1", "--folds", "2",
            "--hidden-size", "8", "--journal", journal, "--output", output,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Ranking" in out
        assert os.path.exists(journal)
        with open(output) as handle:
            ranking = json.load(handle)["ranking"]
        assert len(ranking) == 1
        assert ranking[0]["rank"] == 1
        assert len(ranking[0]["fold_validation_losses"]) == 2
