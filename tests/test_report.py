"""Tests for the ASCII reporting helpers."""

from repro.report import bar_chart, delta_chart, grouped_bar_chart


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart({"Ramnit": 10, "Gatak": 5}, title="Families")
        lines = chart.splitlines()
        assert lines[0] == "Families"
        assert "Ramnit" in lines[1]
        # Ramnit's bar is roughly twice Gatak's.
        assert lines[1].count("#") > lines[2].count("#")

    def test_scaling_to_width(self):
        chart = bar_chart({"a": 100.0, "b": 50.0}, width=20, fmt="{:.0f}")
        assert chart.splitlines()[0].count("#") == 20
        assert chart.splitlines()[1].count("#") == 10

    def test_sorted_mode(self):
        chart = bar_chart({"small": 1, "big": 9}, sort=True)
        assert chart.splitlines()[0].startswith("big")

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_zero_values_no_crash(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart


class TestGroupedBarChart:
    def test_series_aligned_per_label(self):
        chart = grouped_bar_chart(
            {"precision": {"f1": 0.9, "f2": 0.5},
             "recall": {"f1": 0.8, "f2": 0.6}},
        )
        lines = chart.splitlines()
        assert "f1" in lines[0]
        assert "precision" in lines[0]
        assert "recall" in lines[1]
        assert "legend" not in lines[-1]  # legend line uses glyphs
        assert "#=precision" in lines[-1]

    def test_empty(self):
        assert grouped_bar_chart({}, title="x") == "x"


class TestDeltaChart:
    def test_positive_and_negative_sides(self):
        chart = delta_chart({"win": 0.3, "loss": -0.3}, width=10)
        win_line, loss_line = chart.splitlines()
        assert "+" in win_line and "-" not in win_line.split("|")[1]
        assert "-" in loss_line
        # Bars sit on opposite sides of the axis marker.
        assert win_line.index("|") < win_line.rindex("+")
        assert loss_line.rindex("-") < loss_line.index("|") + 1

    def test_empty(self):
        assert delta_chart({}) == ""
