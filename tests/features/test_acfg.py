"""Tests for the ACFG abstraction."""

import numpy as np
import pytest

from repro.cfg.builder import build_cfg_from_text
from repro.exceptions import FeatureExtractionError
from repro.features.acfg import ACFG

from tests.conftest import SAMPLE_ASM


def simple_acfg():
    adjacency = np.array([[0, 1], [0, 0]], dtype=float)
    attributes = np.array([[1.0, 2.0], [3.0, 4.0]])
    return ACFG(adjacency=adjacency, attributes=attributes, label=0, name="t")


class TestConstruction:
    def test_shapes_validated(self):
        with pytest.raises(FeatureExtractionError):
            ACFG(adjacency=np.zeros((2, 3)), attributes=np.zeros((2, 2)))
        with pytest.raises(FeatureExtractionError):
            ACFG(adjacency=np.zeros((2, 2)), attributes=np.zeros((3, 2)))

    def test_empty_graph_rejected(self):
        with pytest.raises(FeatureExtractionError):
            ACFG(adjacency=np.zeros((0, 0)), attributes=np.zeros((0, 2)))

    def test_non_finite_attributes_rejected(self):
        bad = np.array([[1.0, np.nan], [0.0, 1.0]])
        with pytest.raises(FeatureExtractionError):
            ACFG(adjacency=np.zeros((2, 2)), attributes=bad)

    def test_non_finite_adjacency_rejected(self):
        bad = np.array([[0.0, np.inf], [0.0, 0.0]])
        with pytest.raises(FeatureExtractionError):
            ACFG(adjacency=bad, attributes=np.ones((2, 2)))

    def test_properties(self):
        acfg = simple_acfg()
        assert acfg.num_vertices == 2
        assert acfg.num_attributes == 2
        assert acfg.num_edges == 1

    def test_from_cfg_matches_graph(self):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="sample")
        acfg = ACFG.from_cfg(cfg, label=3)
        assert acfg.num_vertices == cfg.num_vertices
        assert acfg.label == 3
        assert acfg.name == "sample"
        np.testing.assert_array_equal(acfg.adjacency, cfg.adjacency_matrix())


class TestPropagationOperator:
    def test_augmented_adjacency_adds_self_loops(self):
        acfg = simple_acfg()
        np.testing.assert_array_equal(
            acfg.augmented_adjacency(), np.array([[1, 1], [0, 1]], dtype=float)
        )

    def test_rows_sum_to_one(self):
        """D̂^-1 Â is a row-stochastic matrix by construction."""
        cfg = build_cfg_from_text(SAMPLE_ASM)
        acfg = ACFG.from_cfg(cfg)
        propagation = acfg.propagation_operator()
        np.testing.assert_allclose(propagation.sum(axis=1), np.ones(acfg.num_vertices))

    def test_matches_explicit_formula(self):
        acfg = simple_acfg()
        augmented = acfg.augmented_adjacency()
        degree_inverse = np.diag(1.0 / augmented.sum(axis=1))
        np.testing.assert_allclose(
            acfg.propagation_operator(), degree_inverse @ augmented
        )

    def test_cached(self):
        acfg = simple_acfg()
        assert acfg.propagation_operator() is acfg.propagation_operator()

    def test_isolated_vertex_still_normalizable(self):
        # A graph with no edges at all: self-loops make D̂ invertible.
        acfg = ACFG(adjacency=np.zeros((3, 3)), attributes=np.ones((3, 2)))
        np.testing.assert_allclose(acfg.propagation_operator(), np.eye(3))
