"""Tests for the batch ACFG extraction pipeline."""

import pytest

from repro.cfg.builder import build_cfg_from_text
from repro.exceptions import MagicError
from repro.features.pipeline import AcfgPipeline, _extract_one_from_text

from tests.conftest import SAMPLE_ASM

GOOD = ("good", SAMPLE_ASM, 0)
EMPTY = ("empty", "", 1)  # empty program -> CfgConstructionError


class TestSequentialExtraction:
    def test_success(self):
        report = AcfgPipeline().extract_from_texts([GOOD])
        assert report.num_succeeded == 1
        assert report.num_failed == 0
        assert report.acfgs[0].label == 0
        assert report.acfgs[0].name == "good"

    def test_failure_collected_not_raised(self):
        report = AcfgPipeline().extract_from_texts([GOOD, EMPTY])
        assert report.num_succeeded == 1
        assert report.num_failed == 1
        assert report.failures[0][0] == "empty"

    def test_order_preserved(self):
        samples = [(f"s{i}", SAMPLE_ASM, i) for i in range(5)]
        report = AcfgPipeline().extract_from_texts(samples)
        assert [a.name for a in report.acfgs] == [f"s{i}" for i in range(5)]

    def test_timing_recorded(self):
        report = AcfgPipeline().extract_from_texts([GOOD])
        assert report.elapsed_seconds > 0
        assert report.seconds_per_sample > 0

    def test_empty_batch(self):
        report = AcfgPipeline().extract_from_texts([])
        assert report.num_succeeded == 0
        assert report.seconds_per_sample == 0.0


class TestParallelExtraction:
    def test_parallel_matches_sequential(self):
        samples = [(f"s{i}", SAMPLE_ASM, i % 3) for i in range(8)]
        sequential = AcfgPipeline(max_workers=1).extract_from_texts(samples)
        parallel = AcfgPipeline(max_workers=4).extract_from_texts(samples)
        assert [a.name for a in parallel.acfgs] == [a.name for a in sequential.acfgs]
        assert [a.label for a in parallel.acfgs] == [a.label for a in sequential.acfgs]

    def test_parallel_collects_failures(self):
        report = AcfgPipeline(max_workers=2).extract_from_texts([GOOD, EMPTY])
        assert report.num_failed == 1

    def test_invalid_worker_count(self):
        with pytest.raises(MagicError):
            AcfgPipeline(max_workers=0)


class TestDuplicateNames:
    """Samples sharing a name must all survive extraction.

    Regression test: futures used to be keyed by sample name, so two
    samples named alike collapsed into one result.
    """

    @pytest.mark.parametrize("max_workers", [1, 4])
    def test_duplicate_names_all_extracted(self, max_workers):
        samples = [("dup", SAMPLE_ASM, i) for i in range(4)]
        report = AcfgPipeline(max_workers=max_workers).extract_from_texts(samples)
        assert report.num_succeeded == 4
        assert [a.label for a in report.acfgs] == [0, 1, 2, 3]

    @pytest.mark.parametrize("max_workers", [1, 3])
    def test_duplicate_names_with_failures(self, max_workers):
        samples = [
            ("dup", SAMPLE_ASM, 0),
            ("dup", "", 1),  # fails: empty program
            ("dup", SAMPLE_ASM, 2),
        ]
        report = AcfgPipeline(max_workers=max_workers).extract_from_texts(samples)
        assert report.num_succeeded == 2
        assert report.num_failed == 1
        assert [a.label for a in report.acfgs] == [0, 2]


class TestUnexpectedWorkerErrors:
    """Non-MagicError exceptions are recorded as failures, not raised."""

    @pytest.mark.parametrize("max_workers", [1, 2])
    def test_raising_worker_recorded_in_failures(self, max_workers):
        def worker(item):
            name = item[0]
            if name == "boom":
                raise ValueError("parser blew up")
            return _extract_one_from_text(item)

        samples = [GOOD, ("boom", SAMPLE_ASM, 1), ("tail", SAMPLE_ASM, 2)]
        report = AcfgPipeline(max_workers=max_workers)._run(samples, worker)
        assert report.num_succeeded == 2
        assert report.num_failed == 1
        name, message = report.failures[0]
        assert name == "boom"
        assert "ValueError" in message
        assert "parser blew up" in message
        # Successes on either side of the failure are both kept, in order.
        assert [a.name for a in report.acfgs] == ["good", "tail"]


class TestCfgIngestion:
    def test_extract_from_prebuilt_cfgs(self):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="pre")
        report = AcfgPipeline().extract_from_cfgs([(cfg, 4)])
        assert report.num_succeeded == 1
        assert report.acfgs[0].label == 4
        assert report.acfgs[0].num_vertices == cfg.num_vertices
