"""Tests for the fault-tolerant batch ACFG extraction service."""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.exceptions import ConfigurationError, MagicError
from repro.cfg.builder import build_cfg_from_text
from repro.features.pipeline import (
    AcfgPipeline,
    ExtractionFailure,
    FailureKind,
)
from repro.testing.faults import FaultPlan

from tests.conftest import SAMPLE_ASM
from tests.features import extraction_scenario

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

GOOD = ("good", SAMPLE_ASM, 0)
EMPTY = ("empty", "", 1)  # empty program -> CfgConstructionError


def assert_reports_equal(a, b):
    """Same ACFGs (values and order) and the same structured failures."""
    assert [x.name for x in a.acfgs] == [x.name for x in b.acfgs]
    assert [x.label for x in a.acfgs] == [x.label for x in b.acfgs]
    for x, y in zip(a.acfgs, b.acfgs):
        np.testing.assert_array_equal(x.adjacency, y.adjacency)
        np.testing.assert_array_equal(x.attributes, y.attributes)
    assert a.failures == b.failures


class TestSequentialExtraction:
    def test_success(self):
        report = AcfgPipeline().extract_from_texts([GOOD])
        assert report.num_succeeded == 1
        assert report.num_failed == 0
        assert report.acfgs[0].label == 0
        assert report.acfgs[0].name == "good"

    def test_failure_collected_not_raised(self):
        report = AcfgPipeline().extract_from_texts([GOOD, EMPTY])
        assert report.num_succeeded == 1
        assert report.num_failed == 1
        failure = report.failures[0]
        assert failure.name == "empty"
        assert failure.kind is FailureKind.PARSE
        assert failure.index == 1

    def test_order_preserved(self):
        samples = [(f"s{i}", SAMPLE_ASM, i) for i in range(5)]
        report = AcfgPipeline().extract_from_texts(samples)
        assert [a.name for a in report.acfgs] == [f"s{i}" for i in range(5)]

    def test_timing_recorded(self):
        report = AcfgPipeline().extract_from_texts([GOOD])
        assert report.elapsed_seconds > 0
        assert report.seconds_per_sample > 0

    def test_empty_batch(self):
        report = AcfgPipeline().extract_from_texts([])
        assert report.num_succeeded == 0
        assert report.seconds_per_sample == 0.0  # repro: allow[float-equality] — exact by construction


class TestParallelExtraction:
    def test_parallel_matches_sequential(self):
        samples = [(f"s{i}", SAMPLE_ASM, i % 3) for i in range(8)]
        sequential = AcfgPipeline(max_workers=1).extract_from_texts(samples)
        parallel = AcfgPipeline(max_workers=4).extract_from_texts(samples)
        assert_reports_equal(sequential, parallel)

    def test_parallel_collects_failures(self):
        report = AcfgPipeline(max_workers=2).extract_from_texts([GOOD, EMPTY])
        assert report.num_failed == 1
        assert report.failures[0].kind is FailureKind.PARSE

    def test_invalid_worker_count(self):
        with pytest.raises(MagicError):
            AcfgPipeline(max_workers=0)


class TestConfigurationValidation:
    def test_timeout_requires_processes(self):
        with pytest.raises(ConfigurationError, match="use_processes"):
            AcfgPipeline(max_workers=2, timeout=1.0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="positive"):
            AcfgPipeline(use_processes=True, timeout=0.0)

    def test_resume_requires_journal(self):
        with pytest.raises(ConfigurationError, match="journal_path"):
            AcfgPipeline(resume=True)

    def test_invalid_max_vertices(self):
        with pytest.raises(ConfigurationError, match="max_vertices"):
            AcfgPipeline(max_vertices=0)

    def test_unknown_worker_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            AcfgPipeline().run_units([("x", None, None)], "no-such-worker")


class TestDuplicateNames:
    """Samples sharing a name must all survive extraction.

    Regression test: futures used to be keyed by sample name, so two
    samples named alike collapsed into one result.
    """

    @pytest.mark.parametrize("workers", [
        dict(max_workers=1),
        dict(max_workers=4),
        dict(max_workers=2, use_processes=True),
    ])
    def test_duplicate_names_all_extracted(self, workers):
        samples = [("dup", SAMPLE_ASM, i) for i in range(4)]
        report = AcfgPipeline(**workers).extract_from_texts(samples)
        assert report.num_succeeded == 4
        assert [a.label for a in report.acfgs] == [0, 1, 2, 3]

    @pytest.mark.parametrize("workers", [
        dict(max_workers=1),
        dict(max_workers=3),
        dict(max_workers=2, use_processes=True),
    ])
    def test_duplicate_names_with_failures(self, workers):
        samples = [
            ("dup", SAMPLE_ASM, 0),
            ("dup", "", 1),  # fails: empty program
            ("dup", SAMPLE_ASM, 2),
        ]
        report = AcfgPipeline(**workers).extract_from_texts(samples)
        assert report.num_succeeded == 2
        assert report.num_failed == 1
        assert [a.label for a in report.acfgs] == [0, 2]
        assert report.failures[0].index == 1


class TestFaultInjection:
    """The deterministic harness drives every classification path."""

    def samples(self, count=6):
        return [(f"s{i}", SAMPLE_ASM, i % 3) for i in range(count)]

    @pytest.mark.parametrize("workers", [
        dict(max_workers=1),
        dict(max_workers=2),
        dict(max_workers=2, use_processes=True),
    ])
    def test_injected_raise_is_unexpected(self, workers):
        plan = FaultPlan.build(raise_on=[2])
        report = AcfgPipeline(fault_plan=plan, **workers).extract_from_texts(
            self.samples()
        )
        assert report.num_succeeded == 5
        (failure,) = report.failures
        assert failure.kind is FailureKind.UNEXPECTED
        assert failure.index == 2
        assert "injected fault" in failure.detail

    @pytest.mark.parametrize("workers", [
        dict(max_workers=1),
        dict(max_workers=2, use_processes=True),
    ])
    def test_injected_corrupt_output_rejected(self, workers):
        plan = FaultPlan.build(corrupt_on=[1])
        report = AcfgPipeline(fault_plan=plan, **workers).extract_from_texts(
            self.samples()
        )
        assert report.num_succeeded == 5
        (failure,) = report.failures
        assert failure.kind is FailureKind.UNEXPECTED
        assert "corrupt" in failure.detail

    def test_injected_hang_killed_by_timeout(self):
        plan = FaultPlan.build(hang_on=[0], hang_seconds=60.0)
        report = AcfgPipeline(
            max_workers=2, use_processes=True, timeout=1.0, fault_plan=plan
        ).extract_from_texts(self.samples())
        (failure,) = report.failures
        assert failure.kind is FailureKind.TIMEOUT
        assert failure.index == 0
        assert report.num_succeeded == 5

    def test_injected_crash_detected(self):
        plan = FaultPlan.build(crash_on=[3])
        report = AcfgPipeline(
            max_workers=2, use_processes=True, fault_plan=plan
        ).extract_from_texts(self.samples())
        (failure,) = report.failures
        assert failure.kind is FailureKind.CRASH
        assert "exit code 23" in failure.detail
        assert report.num_succeeded == 5

    def test_conflicting_plan_rejected(self):
        with pytest.raises(ValueError, match="two faults"):
            FaultPlan.build(raise_on=[1], hang_on=[1])


class TestProcessPool:
    def test_matches_serial(self):
        samples = [(f"s{i}", SAMPLE_ASM, i % 3) for i in range(9)]
        samples[4] = EMPTY
        serial = AcfgPipeline().extract_from_texts(samples)
        pooled = AcfgPipeline(
            max_workers=3, use_processes=True
        ).extract_from_texts(samples)
        assert_reports_equal(serial, pooled)

    def test_oversize_guard(self):
        big = extraction_scenario.chain_listing(40)
        samples = [GOOD, ("big", big, 1), ("tail", SAMPLE_ASM, 2)]
        report = AcfgPipeline(
            max_workers=2, use_processes=True, max_vertices=20
        ).extract_from_texts(samples)
        assert [a.name for a in report.acfgs] == ["good", "tail"]
        (failure,) = report.failures
        assert failure.kind is FailureKind.OVERSIZE
        assert "40 vertices" in failure.detail

    def test_oversize_guard_serial_and_threaded(self):
        big = extraction_scenario.chain_listing(40)
        samples = [GOOD, ("big", big, 1)]
        for kwargs in (dict(max_workers=1), dict(max_workers=2)):
            report = AcfgPipeline(
                max_vertices=20, **kwargs
            ).extract_from_texts(samples)
            assert report.failures[0].kind is FailureKind.OVERSIZE

    def test_failure_order_interleaved_with_successes(self):
        plan = FaultPlan.build(raise_on=[1, 4], crash_on=[6])
        samples = [(f"s{i}", SAMPLE_ASM, i % 3) for i in range(8)]
        report = AcfgPipeline(
            max_workers=3, use_processes=True, fault_plan=plan
        ).extract_from_texts(samples)
        assert [a.name for a in report.acfgs] == ["s0", "s2", "s3", "s5", "s7"]
        assert [f.index for f in report.failures] == [1, 4, 6]
        assert [f.kind for f in report.failures] == [
            FailureKind.UNEXPECTED, FailureKind.UNEXPECTED, FailureKind.CRASH,
        ]


class TestJournalResume:
    def run(self, samples, **kwargs):
        return AcfgPipeline(
            max_workers=2, use_processes=True, **kwargs
        ).extract_from_texts(samples)

    def samples(self):
        samples = [(f"s{i}", SAMPLE_ASM, i % 3) for i in range(8)]
        samples[3] = EMPTY
        return samples

    def test_full_resume_skips_everything(self, tmp_path):
        journal = str(tmp_path / "extract.jsonl")
        first = self.run(self.samples(), journal_path=journal)
        assert first.resumed_samples == 0
        resumed = self.run(
            self.samples(), journal_path=journal, resume=True
        )
        assert resumed.resumed_samples == 8
        assert_reports_equal(first, resumed)

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = str(tmp_path / "extract.jsonl")
        full = self.run(self.samples(), journal_path=journal)
        lines = open(journal).read().splitlines()
        assert len(lines) == 9  # header + 8 samples
        with open(journal, "w") as handle:
            handle.write("\n".join(lines[:5]) + "\n" + lines[5][:30])
        resumed = self.run(
            self.samples(), journal_path=journal, resume=True
        )
        assert resumed.resumed_samples == 4
        assert_reports_equal(full, resumed)

    def test_failures_are_resumed_not_retried(self, tmp_path):
        journal = str(tmp_path / "extract.jsonl")
        first = self.run(self.samples(), journal_path=journal)
        resumed = self.run(
            self.samples(), journal_path=journal, resume=True
        )
        assert resumed.failures == first.failures
        records = [json.loads(line) for line in open(journal)]
        # One line per sample plus the header: resume appended nothing.
        assert len(records) == 9

    def test_fingerprint_mismatch_refused(self, tmp_path):
        journal = str(tmp_path / "extract.jsonl")
        self.run(self.samples(), journal_path=journal)
        different = self.samples()[:-1]
        with pytest.raises(ConfigurationError, match="fingerprint"):
            self.run(different, journal_path=journal, resume=True)

    def test_journal_without_resume_starts_fresh(self, tmp_path):
        journal = str(tmp_path / "extract.jsonl")
        self.run(self.samples(), journal_path=journal)
        again = self.run(self.samples(), journal_path=journal)
        assert again.resumed_samples == 0
        kinds = [json.loads(line)["kind"] for line in open(journal)]
        assert kinds.count("header") == 1

    def test_corrupt_journal_payload_reported(self, tmp_path):
        journal = str(tmp_path / "extract.jsonl")
        self.run(self.samples()[:2], journal_path=journal)
        lines = open(journal).read().splitlines()
        record = json.loads(lines[1])
        record["payload"]["record"] = "not an acfg record"
        lines[1] = json.dumps(record)
        with open(journal, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            self.run(self.samples()[:2], journal_path=journal, resume=True)


class TestQuarantine:
    def test_failing_inputs_preserved(self, tmp_path):
        quarantine = str(tmp_path / "quarantine")
        samples = [GOOD, ("bad input", "", 1)]
        report = AcfgPipeline(
            quarantine_dir=quarantine
        ).extract_from_texts(samples)
        assert report.num_failed == 1
        (entry,) = os.listdir(quarantine)
        assert entry == "000001_parse_bad_input.asm"
        assert open(os.path.join(quarantine, entry)).read() == ""

    def test_quarantine_preserves_text_for_triage(self, tmp_path):
        quarantine = str(tmp_path / "quarantine")
        plan = FaultPlan.build(raise_on=[0])
        AcfgPipeline(
            quarantine_dir=quarantine, fault_plan=plan
        ).extract_from_texts([GOOD])
        (entry,) = os.listdir(quarantine)
        assert entry.startswith("000000_unexpected_")
        assert open(os.path.join(quarantine, entry)).read() == SAMPLE_ASM

    def test_no_quarantine_on_success(self, tmp_path):
        quarantine = str(tmp_path / "quarantine")
        AcfgPipeline(quarantine_dir=quarantine).extract_from_texts([GOOD])
        assert not os.path.exists(quarantine)


class TestCfgIngestion:
    def test_extract_from_prebuilt_cfgs(self):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="pre")
        report = AcfgPipeline().extract_from_cfgs([(cfg, 4)])
        assert report.num_succeeded == 1
        assert report.acfgs[0].label == 4
        assert report.acfgs[0].num_vertices == cfg.num_vertices

    def test_cfg_ingestion_through_process_pool(self):
        cfgs = [
            (build_cfg_from_text(SAMPLE_ASM, name=f"pre{i}"), i)
            for i in range(4)
        ]
        report = AcfgPipeline(
            max_workers=2, use_processes=True
        ).extract_from_cfgs(cfgs)
        assert report.num_succeeded == 4
        assert [a.label for a in report.acfgs] == [0, 1, 2, 3]


class TestAcceptanceScenario:
    """ISSUE 3 acceptance: >=50 samples, hang + crash + oversize injected."""

    def test_fault_injected_run_completes_with_structured_failures(self):
        report = extraction_scenario.build_pipeline().extract_from_texts(
            extraction_scenario.build_samples()
        )
        assert report.num_failed == 3
        by_index = {f.index: f for f in report.failures}
        assert by_index[extraction_scenario.HANG_INDEX].kind \
            is FailureKind.TIMEOUT
        assert by_index[extraction_scenario.CRASH_INDEX].kind \
            is FailureKind.CRASH
        assert by_index[extraction_scenario.OVERSIZE_INDEX].kind \
            is FailureKind.OVERSIZE
        assert report.num_succeeded >= 50


class TestKillAndResumeExtraction:
    """End-to-end: SIGKILL a journaled extraction run, resume, compare."""

    def test_sigkilled_run_resumes_to_identical_report(self, tmp_path):
        # Reference: uninterrupted, journal-free run of the scenario.
        reference = extraction_scenario.build_pipeline().extract_from_texts(
            extraction_scenario.build_samples()
        )

        # Interrupted run: SIGKILL once a few samples hit the journal.
        journal = str(tmp_path / "extract.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            SRC_DIR + os.pathsep + REPO_ROOT
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        cmd = [sys.executable, "-m", "tests.features.extraction_scenario",
               journal]
        process = subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        try:
            deadline = time.time() + 240
            while time.time() < deadline and process.poll() is None:
                if os.path.exists(journal):
                    finished = [
                        line for line in open(journal).read().splitlines()
                        if '"kind": "sample"' in line
                    ]
                    if len(finished) >= 5:
                        break
                time.sleep(0.02)
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()

        # Resume in-process and compare against the uninterrupted run.
        resumed = extraction_scenario.build_pipeline(
            journal, resume=True
        ).extract_from_texts(extraction_scenario.build_samples())
        assert resumed.resumed_samples >= 1
        assert_reports_equal(reference, resumed)

        # The journal holds each sample index exactly once.
        records = [json.loads(line) for line in open(journal)
                   if line.strip() and '"index"' in line]
        indices = [r["index"] for r in records if r["kind"] in
                   ("sample", "failure")]
        assert len(indices) == len(set(indices)) == len(
            extraction_scenario.build_samples()
        )


class TestExtractionFailureType:
    def test_describe_mentions_kind(self):
        failure = ExtractionFailure(
            name="x", kind=FailureKind.TIMEOUT, detail="killed", index=3
        )
        assert "[timeout]" in failure.describe()

    def test_failures_by_kind_groups(self):
        report = AcfgPipeline().extract_from_texts([GOOD, EMPTY, EMPTY])
        grouped = report.failures_by_kind()
        assert set(grouped) == {FailureKind.PARSE}
        assert len(grouped[FailureKind.PARSE]) == 2
