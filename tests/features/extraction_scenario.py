"""Shared fault-injected extraction scenario (acceptance criterion).

Used both in-process (uninterrupted reference run) and by the SIGKILL
subprocess driver, so every run — interrupted or not — is built from the
exact same samples, fault plan, and pipeline settings:

* >= 50 deterministic synthetic MSKCFG listings;
* one hanging sample (killed by the 3s per-sample timeout);
* one hard-crashing sample (worker dies via ``os._exit``);
* one oversize sample (a 150-block chain against a 100-vertex guard).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.datasets import generate_mskcfg_listings
from repro.features.pipeline import AcfgPipeline
from repro.testing.faults import FaultPlan

HANG_INDEX = 10
CRASH_INDEX = 20
OVERSIZE_INDEX = 30
#: Above the largest clean synthetic graph (~300 vertices), below the
#: injected oversize sample.
MAX_VERTICES = 400
TIMEOUT_SECONDS = 3.0
N_JOBS = 2


def chain_listing(num_blocks: int, base: int = 0x500000) -> str:
    """A listing whose CFG is a chain of exactly ``num_blocks`` blocks."""
    lines = []
    addr = base
    for i in range(num_blocks - 1):
        target = addr + 2
        lines.append(f".text:{addr:08X} cmp eax, 0x{i % 7:x}")
        lines.append(f".text:{addr + 1:08X} jz loc_{target:X}")
        lines.append(f"loc_{target:X}:")
        addr += 2
    lines.append(f".text:{addr:08X} retn")
    return "\n".join(lines)


def build_samples() -> List[Tuple[str, str, int]]:
    samples = list(generate_mskcfg_listings(total=55, seed=5))
    assert len(samples) >= 50
    samples[OVERSIZE_INDEX] = (
        "oversize_sample", chain_listing(MAX_VERTICES + 100), 0
    )
    return samples


def build_pipeline(
    journal_path: Optional[str] = None, resume: bool = False
) -> AcfgPipeline:
    return AcfgPipeline(
        max_workers=N_JOBS,
        use_processes=True,
        timeout=TIMEOUT_SECONDS,
        max_vertices=MAX_VERTICES,
        journal_path=journal_path,
        resume=resume,
        fault_plan=FaultPlan.build(
            hang_on=[HANG_INDEX],
            crash_on=[CRASH_INDEX],
            hang_seconds=120.0,
        ),
    )


def main() -> None:
    """Subprocess driver: journaled scenario run (SIGKILL target)."""
    import sys

    journal_path = sys.argv[1]
    resume = len(sys.argv) > 2 and sys.argv[2] == "--resume"
    report = build_pipeline(journal_path, resume).extract_from_texts(
        build_samples()
    )
    print(f"succeeded={report.num_succeeded} failed={report.num_failed}")


if __name__ == "__main__":
    main()
