"""Tests for the ACFG semantic-invariant validator and projector."""

import numpy as np
import pytest

import repro.features.acfg as acfg_module
from repro.cfg.builder import build_cfg_from_text
from repro.exceptions import FeatureExtractionError
from repro.features.acfg import ACFG
from repro.features.attributes import attribute_names
from repro.features.validator import (
    is_semantically_valid,
    project_attributes,
    semantic_violations,
    validate_attributes,
)

from tests.conftest import SAMPLE_ASM


def names():
    return attribute_names()


def index_of(channel):
    return names().index(channel)


def valid_matrix(num_vertices=3):
    """A hand-built attribute matrix satisfying every invariant."""
    adjacency = np.zeros((num_vertices, num_vertices))
    for vertex in range(num_vertices - 1):
        adjacency[vertex, vertex + 1] = 1.0
    attributes = np.zeros((num_vertices, len(names())))
    attributes[:, index_of("mov_instructions")] = 2.0
    attributes[:, index_of("arithmetic_instructions")] = 1.0
    attributes[:, index_of("total_instructions")] = 4.0
    attributes[:, index_of("vertex_instructions")] = 4.0
    attributes[:, index_of("offspring")] = np.count_nonzero(
        adjacency, axis=1
    )
    return attributes, adjacency


class TestViolationCatalogue:
    def test_valid_matrix_has_no_violations(self):
        attributes, adjacency = valid_matrix()
        assert semantic_violations(attributes, adjacency) == []
        assert is_semantically_valid(attributes, adjacency)
        validate_attributes(attributes, adjacency, name="ok")

    def test_negative_count(self):
        attributes, adjacency = valid_matrix()
        attributes[0, index_of("mov_instructions")] = -1.0
        found = semantic_violations(attributes, adjacency)
        assert any("negative" in v.detail for v in found)

    def test_fractional_count(self):
        attributes, adjacency = valid_matrix()
        attributes[1, index_of("numeric_constants")] = 0.5
        found = semantic_violations(attributes, adjacency)
        assert any("not an integer" in v.detail for v in found)

    def test_offspring_must_match_out_degree(self):
        attributes, adjacency = valid_matrix()
        attributes[0, index_of("offspring")] += 1.0
        found = semantic_violations(attributes, adjacency)
        assert any(v.channel == "offspring" for v in found)

    def test_vertex_instructions_must_equal_total(self):
        attributes, adjacency = valid_matrix()
        attributes[2, index_of("vertex_instructions")] += 1.0
        found = semantic_violations(attributes, adjacency)
        assert any(v.channel == "vertex_instructions" for v in found)

    def test_category_sum_bounded_by_total(self):
        attributes, adjacency = valid_matrix()
        attributes[0, index_of("call_instructions")] = 10.0
        found = semantic_violations(attributes, adjacency)
        assert any("category counts" in v.detail for v in found)

    def test_empty_block_rejected(self):
        attributes, adjacency = valid_matrix()
        attributes[1, index_of("total_instructions")] = 0.0
        attributes[1, index_of("vertex_instructions")] = 0.0
        attributes[1, index_of("mov_instructions")] = 0.0
        attributes[1, index_of("arithmetic_instructions")] = 0.0
        found = semantic_violations(attributes, adjacency)
        assert any("no instructions" in v.detail for v in found)

    def test_non_finite_short_circuits(self):
        attributes, adjacency = valid_matrix()
        attributes[0, 0] = np.nan
        found = semantic_violations(attributes, adjacency)
        assert len(found) == 1
        assert "not finite" in found[0].detail

    def test_validate_raises_with_vertex_and_channel(self):
        attributes, adjacency = valid_matrix()
        attributes[0, index_of("offspring")] += 2.0
        with pytest.raises(FeatureExtractionError, match="offspring"):
            validate_attributes(attributes, adjacency, name="broken")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FeatureExtractionError):
            semantic_violations(np.zeros((2, 3)), np.zeros((2, 2)))


class TestProjector:
    def test_projection_output_is_valid(self, rng):
        _, adjacency = valid_matrix(4)
        noisy = rng.normal(0.0, 3.0, (4, len(names())))
        projected = project_attributes(noisy, adjacency)
        assert is_semantically_valid(projected, adjacency)

    def test_idempotent(self, rng):
        _, adjacency = valid_matrix(4)
        noisy = rng.normal(0.0, 3.0, (4, len(names())))
        once = project_attributes(noisy, adjacency)
        twice = project_attributes(once, adjacency)
        np.testing.assert_array_equal(once, twice)

    def test_valid_matrix_is_fixed_point(self):
        attributes, adjacency = valid_matrix()
        projected = project_attributes(attributes, adjacency)
        np.testing.assert_array_equal(projected, attributes)

    def test_non_finite_input_rejected(self):
        attributes, adjacency = valid_matrix()
        attributes[0, 0] = np.inf
        with pytest.raises(FeatureExtractionError):
            project_attributes(attributes, adjacency)

    def test_bounds_clamp_counts_into_box(self):
        attributes, adjacency = valid_matrix()
        lower = attributes - 1.0
        upper = attributes + 1.0
        pushed = attributes.copy()
        pushed[:, index_of("mov_instructions")] += 5.0
        projected = project_attributes(
            pushed, adjacency, lower=lower, upper=upper
        )
        # Clamped to the box ceiling (one above the original count).
        np.testing.assert_array_equal(
            projected[:, index_of("mov_instructions")],
            attributes[:, index_of("mov_instructions")] + 1.0,
        )
        assert is_semantically_valid(projected, adjacency)

    def test_bounds_projection_idempotent(self, rng):
        attributes, adjacency = valid_matrix(4)
        lower = attributes - 2.0
        upper = attributes + 2.0
        noisy = attributes + rng.normal(0.0, 4.0, attributes.shape)
        once = project_attributes(noisy, adjacency, lower=lower, upper=upper)
        twice = project_attributes(once, adjacency, lower=lower, upper=upper)
        np.testing.assert_array_equal(once, twice)

    def test_original_count_survives_tight_bounds(self):
        # The attack's box always contains the clean sample; projecting
        # the clean sample with a zero-width box must return it intact.
        attributes, adjacency = valid_matrix()
        projected = project_attributes(
            attributes, adjacency, lower=attributes, upper=attributes
        )
        np.testing.assert_array_equal(projected, attributes)


class TestExtractionBoundary:
    def test_extracted_acfg_passes_validator(self):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="sample")
        acfg = ACFG.from_cfg(cfg, label=0)
        assert is_semantically_valid(acfg.attributes, acfg.adjacency)

    def test_from_cfg_rejects_corrupt_extraction(self, monkeypatch):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="sample")
        clean = acfg_module.extract_attribute_matrix(cfg)
        corrupt = clean.copy()
        corrupt[:, index_of("offspring")] += 1.0

        monkeypatch.setattr(
            acfg_module, "extract_attribute_matrix", lambda _: corrupt
        )
        with pytest.raises(FeatureExtractionError, match="offspring"):
            ACFG.from_cfg(cfg, label=0)
