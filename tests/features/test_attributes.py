"""Tests for Table I attribute extraction."""

import numpy as np
import pytest

from repro.cfg.builder import build_cfg_from_text
from repro.exceptions import FeatureExtractionError
from repro.features.attributes import (
    DEFAULT_ATTRIBUTES,
    attribute_names,
    extract_attribute_matrix,
    extract_block_attributes,
    num_attributes,
    register_attribute,
    unregister_attribute,
)

from tests.conftest import SAMPLE_ASM

IDX = {name: i for i, name in enumerate(DEFAULT_ATTRIBUTES)}


@pytest.fixture
def sample_cfg():
    return build_cfg_from_text(SAMPLE_ASM)


class TestTableOne:
    def test_eleven_default_attributes(self):
        assert len(DEFAULT_ATTRIBUTES) == 11
        assert num_attributes() >= 11

    def test_entry_block_attributes(self, sample_cfg):
        # Entry block: push ebp / mov ebp, esp / cmp eax, 0x5 / jz loc
        entry = sample_cfg.entry_block()
        vector = extract_block_attributes(entry, sample_cfg)
        assert vector[IDX["numeric_constants"]] == 1      # the 0x5
        assert vector[IDX["transfer_instructions"]] == 2  # push + jz
        assert vector[IDX["call_instructions"]] == 0
        assert vector[IDX["arithmetic_instructions"]] == 0
        assert vector[IDX["compare_instructions"]] == 1   # cmp
        assert vector[IDX["mov_instructions"]] == 1       # mov
        assert vector[IDX["termination_instructions"]] == 0
        assert vector[IDX["data_declaration_instructions"]] == 0
        assert vector[IDX["total_instructions"]] == 4
        assert vector[IDX["offspring"]] == 2              # two successors
        assert vector[IDX["vertex_instructions"]] == 4

    def test_exit_block_termination(self, sample_cfg):
        exit_block = sample_cfg.get_block(0x401015)  # mov / retn
        vector = extract_block_attributes(exit_block, sample_cfg)
        assert vector[IDX["termination_instructions"]] == 1
        assert vector[IDX["offspring"]] == 0

    def test_matrix_shape_and_order(self, sample_cfg):
        matrix = extract_attribute_matrix(sample_cfg)
        assert matrix.shape == (5, num_attributes())
        # Row 0 must be the entry block's attributes.
        np.testing.assert_array_equal(
            matrix[0],
            extract_block_attributes(sample_cfg.entry_block(), sample_cfg),
        )

    def test_matrix_nonnegative(self, sample_cfg):
        assert (extract_attribute_matrix(sample_cfg) >= 0).all()

    def test_empty_cfg_rejected(self):
        from repro.cfg.graph import ControlFlowGraph

        with pytest.raises(FeatureExtractionError):
            extract_attribute_matrix(ControlFlowGraph())


class TestExtensibility:
    """Section II-B: "more attributes can be conveniently added"."""

    def test_register_and_use_custom_attribute(self, sample_cfg):
        register_attribute("in_block_bytes", lambda b, g: float(b.end_address - b.start_address))
        try:
            names = attribute_names()
            assert names[-1] == "in_block_bytes"
            matrix = extract_attribute_matrix(sample_cfg)
            assert matrix.shape[1] == len(names)
        finally:
            unregister_attribute("in_block_bytes")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(FeatureExtractionError):
            register_attribute("offspring", lambda b, g: 0.0)

    def test_cannot_remove_builtin(self):
        with pytest.raises(FeatureExtractionError):
            unregister_attribute("offspring")

    def test_cannot_remove_unknown(self):
        with pytest.raises(FeatureExtractionError):
            unregister_attribute("does_not_exist")
