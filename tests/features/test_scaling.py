"""Tests for the attribute scaler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FeatureExtractionError
from repro.features.acfg import ACFG
from repro.features.scaling import AttributeScaler


def make_acfg(attributes, label=0):
    n = attributes.shape[0]
    return ACFG(adjacency=np.zeros((n, n)), attributes=attributes, label=label)


class TestScaler:
    def test_fit_before_transform_required(self):
        with pytest.raises(FeatureExtractionError):
            AttributeScaler().transform([make_acfg(np.ones((2, 3)))])

    def test_fit_on_empty_rejected(self):
        with pytest.raises(FeatureExtractionError):
            AttributeScaler().fit([])

    def test_transformed_train_is_standardized(self):
        rng = np.random.default_rng(0)
        acfgs = [make_acfg(rng.integers(0, 50, (5, 3)).astype(float)) for _ in range(10)]
        scaled = AttributeScaler().fit_transform(acfgs)
        stacked = np.concatenate([a.attributes for a in scaled], axis=0)
        np.testing.assert_allclose(stacked.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(stacked.std(axis=0), 1.0, atol=1e-9)

    def test_constant_channel_scales_to_zero(self):
        acfgs = [make_acfg(np.full((3, 2), 7.0))]
        scaled = AttributeScaler().fit_transform(acfgs)
        np.testing.assert_allclose(scaled[0].attributes, 0.0)

    def test_labels_and_adjacency_preserved(self):
        acfg = make_acfg(np.ones((2, 2)), label=5)
        scaled = AttributeScaler().fit_transform([acfg])[0]
        assert scaled.label == 5
        np.testing.assert_array_equal(scaled.adjacency, acfg.adjacency)

    def test_original_not_mutated(self):
        attributes = np.ones((2, 2)) * 3
        acfg = make_acfg(attributes.copy())
        AttributeScaler().fit_transform([acfg])
        np.testing.assert_array_equal(acfg.attributes, attributes)

    def test_without_log(self):
        acfgs = [make_acfg(np.array([[0.0], [10.0]]))]
        scaler = AttributeScaler(use_log=False).fit(acfgs)
        np.testing.assert_allclose(scaler.mean_, [5.0])

    @given(st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_transform_is_finite_for_any_count(self, count):
        """Property: scaled attributes are always finite."""
        train = [make_acfg(np.array([[0.0], [3.0], [9.0]]))]
        scaler = AttributeScaler().fit(train)
        out = scaler.transform([make_acfg(np.array([[float(count)]]))])
        assert np.isfinite(out[0].attributes).all()
