"""Unit tests for the extraction JSONL journal."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.features.journal import (
    ExtractionJournal,
    open_journal,
    samples_fingerprint,
)

FINGERPRINT = {"worker": "text", "num_samples": 3, "samples": "abc123"}


def make_journal(tmp_path, fingerprint=None):
    path = str(tmp_path / "journal.jsonl")
    return ExtractionJournal(path, fingerprint or FINGERPRINT)


class TestSamplesFingerprint:
    def test_deterministic(self):
        assert samples_fingerprint(["a", "b"]) == samples_fingerprint(["a", "b"])

    def test_order_aware(self):
        assert samples_fingerprint(["a", "b"]) != samples_fingerprint(["b", "a"])

    def test_count_aware(self):
        # Concatenation ambiguity must not collide two different corpora.
        assert samples_fingerprint(["ab"]) != samples_fingerprint(["a", "b"])

    def test_short_stable_hex(self):
        value = samples_fingerprint(["x"])
        assert len(value) == 16
        int(value, 16)


class TestRoundTrip:
    def test_records_round_trip(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.record_sample(0, "s0", {"record": "data"})
        journal.record_failure(1, "s1", "timeout", "killed")
        journal.close()

        completed = make_journal(tmp_path).load_completed()
        assert set(completed) == {0, 1}
        assert completed[0]["kind"] == "sample"
        assert completed[0]["payload"] == {"record": "data"}
        assert completed[1]["kind"] == "failure"
        assert completed[1]["failure_kind"] == "timeout"

    def test_missing_journal_is_empty(self, tmp_path):
        assert make_journal(tmp_path).load_completed() == {}

    def test_fresh_open_truncates(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.record_sample(0, "s0", {})
        journal.close()
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.close()
        assert make_journal(tmp_path).load_completed() == {}

    def test_append_open_preserves(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.record_sample(0, "s0", {})
        journal.close()
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=False)
        journal.record_sample(1, "s1", {})
        journal.close()
        assert set(make_journal(tmp_path).load_completed()) == {0, 1}


class TestTornLines:
    def test_torn_final_line_skipped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.record_sample(0, "s0", {})
        journal.record_sample(1, "s1", {})
        journal.close()
        content = open(journal.path).read()
        with open(journal.path, "w") as handle:
            handle.write(content[: len(content) - 12])
        completed = make_journal(tmp_path).load_completed()
        assert set(completed) == {0}

    def test_blank_and_alien_lines_skipped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.record_sample(0, "s0", {})
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write("\n")
            handle.write(json.dumps({"kind": "something-else"}) + "\n")
        assert set(make_journal(tmp_path).load_completed()) == {0}


class TestHeaderValidation:
    def test_fingerprint_mismatch(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.open_for_append(fresh=True)
        journal.close()
        other = make_journal(tmp_path, dict(FINGERPRINT, num_samples=99))
        with pytest.raises(ConfigurationError, match="fingerprint mismatch"):
            other.load_completed()

    def test_unreadable_header(self, tmp_path):
        journal = make_journal(tmp_path)
        with open(journal.path, "w") as handle:
            handle.write("{garbage\n")
        with pytest.raises(ConfigurationError, match="unreadable"):
            journal.load_completed()

    def test_missing_header_kind(self, tmp_path):
        journal = make_journal(tmp_path)
        with open(journal.path, "w") as handle:
            handle.write(json.dumps({"kind": "sample", "index": 0}) + "\n")
        with pytest.raises(ConfigurationError, match="header"):
            journal.load_completed()

    def test_empty_file_is_empty(self, tmp_path):
        journal = make_journal(tmp_path)
        with open(journal.path, "w", encoding="utf-8"):
            pass  # truncate
        assert journal.load_completed() == {}


class TestOpenJournalHelper:
    def test_none_path_disables_journaling(self):
        journal, completed = open_journal(None, FINGERPRINT, resume=False)
        assert journal is None
        assert completed == {}

    def test_resume_returns_completed(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal, _ = open_journal(path, FINGERPRINT, resume=False)
        journal.record_sample(0, "s0", {})
        journal.close()
        journal, completed = open_journal(path, FINGERPRINT, resume=True)
        journal.close()
        assert set(completed) == {0}

    def test_fresh_run_ignores_existing_entries(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal, _ = open_journal(path, FINGERPRINT, resume=False)
        journal.record_sample(0, "s0", {})
        journal.close()
        journal, completed = open_journal(path, FINGERPRINT, resume=False)
        journal.close()
        assert completed == {}
