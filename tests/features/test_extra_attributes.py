"""Tests for the optional extended attributes."""

import math

import numpy as np
import pytest

from repro.cfg.builder import build_cfg_from_text
from repro.features.attributes import attribute_names, num_attributes
from repro.features.acfg import ACFG
from repro.features.extra_attributes import (
    EXTENDED_ATTRIBUTES,
    disable_extended_attributes,
    enable_extended_attributes,
)

from tests.conftest import SAMPLE_ASM


@pytest.fixture
def extended():
    enable_extended_attributes()
    yield
    disable_extended_attributes()


class TestToggle:
    def test_enable_adds_channels(self, extended):
        assert num_attributes() == 11 + len(EXTENDED_ATTRIBUTES)
        assert "mnemonic_entropy" in attribute_names()

    def test_disable_restores_layout(self):
        enable_extended_attributes()
        disable_extended_attributes()
        assert num_attributes() == 11

    def test_acfg_picks_up_new_channels(self, extended):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        acfg = ACFG.from_cfg(cfg)
        assert acfg.num_attributes == 11 + len(EXTENDED_ATTRIBUTES)


class TestExtendedValues:
    def test_in_degree(self, extended):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        acfg = ACFG.from_cfg(cfg)
        names = attribute_names()
        column = names.index("in_degree")
        # Block at 0x401015 has two predecessors (b1 and b3).
        row = [b.start_address for b in cfg.blocks()].index(0x401015)
        assert acfg.attributes[row, column] == 2.0  # repro: allow[float-equality] — exact by construction

    def test_mnemonic_entropy_bounds(self, extended):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        acfg = ACFG.from_cfg(cfg)
        column = attribute_names().index("mnemonic_entropy")
        entropies = acfg.attributes[:, column]
        assert (entropies >= 0).all()
        # Entropy cannot exceed log2(block length).
        for block, entropy in zip(cfg.blocks(), entropies):
            assert entropy <= math.log2(max(2, len(block)))

    def test_repeated_mnemonics_have_zero_entropy(self, extended):
        cfg = build_cfg_from_text(
            ".text:00401000 nop\n.text:00401001 nop\n.text:00401002 nop\n"
        )
        acfg = ACFG.from_cfg(cfg)
        column = attribute_names().index("mnemonic_entropy")
        np.testing.assert_allclose(acfg.attributes[:, column], 0.0)

    def test_unique_mnemonics_and_operands(self, extended):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        acfg = ACFG.from_cfg(cfg)
        names = attribute_names()
        unique_col = names.index("unique_mnemonics")
        operand_col = names.index("operand_count")
        entry_row = 0  # push/mov/cmp/jz: 4 unique, 1+2+2+1 = 6 operands
        assert acfg.attributes[entry_row, unique_col] == 4.0  # repro: allow[float-equality] — exact by construction
        assert acfg.attributes[entry_row, operand_col] == 6.0  # repro: allow[float-equality] — exact by construction


class TestInDegree:
    def test_graph_in_degree(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        by_addr = {b.start_address: b for b in cfg.blocks()}
        assert cfg.in_degree(by_addr[0x401000]) == 0   # entry
        assert cfg.in_degree(by_addr[0x401015]) == 2   # join point
        assert cfg.in_degree(by_addr[0x401012]) == 2   # jz target + fall
