"""Gate: mypy strict over the typed core subset.

Skipped when mypy is not installed (the CI lint-gate job installs it);
the checked file set lives in ``[tool.mypy]`` in pyproject.toml.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_mypy_strict_core_subset():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
