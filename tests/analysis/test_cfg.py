"""CFG construction: branches, loops, ``finally`` cloning, with-regions,
exception routing, and path queries."""

from __future__ import annotations

import ast
import textwrap
from typing import List, Tuple

from repro.analysis import BasicBlock, ControlFlowGraph, build_cfg
from repro.analysis.cfg import FunctionNode, handler_catches_all, iter_functions


def parse_function(source: str) -> FunctionNode:
    tree = ast.parse(textwrap.dedent(source))
    return next(iter_functions(tree))


def cfg_of(source: str) -> Tuple[FunctionNode, ControlFlowGraph]:
    func = parse_function(source)
    return func, build_cfg(func)


def blocks_by_label(cfg: ControlFlowGraph, label: str) -> List[BasicBlock]:
    return [block for block in cfg.blocks.values() if block.label == label]


class TestStraightLine:
    def test_entry_reaches_exit(self):
        _, cfg = cfg_of(
            """\
            def f(x):
                y = x + 1
                return y
            """
        )
        assert cfg.find_path([cfg.entry], frozenset({cfg.exit_block})) is not None

    def test_every_statement_gets_an_exception_edge(self):
        _, cfg = cfg_of(
            """\
            def f(x):
                y = x + 1
                return y
            """
        )
        assign = blocks_by_label(cfg, "Assign")[0]
        kinds = dict(cfg.successors(assign.block_id))
        assert kinds.get(cfg.raise_exit) == "exception"

    def test_pass_cannot_raise(self):
        _, cfg = cfg_of(
            """\
            def f():
                pass
            """
        )
        block = blocks_by_label(cfg, "Pass")[0]
        kinds = [kind for _, kind in cfg.successors(block.block_id)]
        assert "exception" not in kinds


class TestBranches:
    def test_if_has_true_and_false_edges(self):
        _, cfg = cfg_of(
            """\
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        header = blocks_by_label(cfg, "if")[0]
        kinds = {kind for _, kind in cfg.successors(header.block_id)}
        assert {"true", "false"} <= kinds

    def test_both_arms_reach_the_return(self):
        func, cfg = cfg_of(
            """\
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        return_blocks = frozenset(cfg.blocks_for(func.body[1]))
        for arm in (func.body[0].body[0], func.body[0].orelse[0]):
            starts = cfg.blocks_for(arm)
            assert cfg.find_path(starts, return_blocks) is not None


class TestLoops:
    def test_while_body_loops_back_to_the_header(self):
        _, cfg = cfg_of(
            """\
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        header = blocks_by_label(cfg, "while")[0]
        body = blocks_by_label(cfg, "AugAssign")[0]
        assert (header.block_id, "loop") in cfg.successors(body.block_id)

    def test_infinite_loop_exits_only_via_break(self):
        func, cfg = cfg_of(
            """\
            def f():
                while True:
                    break
            """
        )
        header = blocks_by_label(cfg, "while")[0]
        kinds = {kind for _, kind in cfg.successors(header.block_id)}
        assert "false" not in kinds
        break_block = cfg.blocks_for(func.body[0].body[0])[0]
        assert cfg.find_path([break_block], frozenset({cfg.exit_block})) is not None


class TestTryRouting:
    def test_catch_all_handler_stops_propagation(self):
        func, cfg = cfg_of(
            """\
            def f(risky):
                try:
                    risky()
                except Exception:
                    pass
            """
        )
        risky_block = cfg.blocks_for(func.body[0].body[0])[0]
        assert cfg.find_path([risky_block], frozenset({cfg.raise_exit})) is None

    def test_narrow_handler_keeps_the_escape_path(self):
        func, cfg = cfg_of(
            """\
            def f(risky):
                try:
                    risky()
                except ValueError:
                    pass
            """
        )
        risky_block = cfg.blocks_for(func.body[0].body[0])[0]
        assert cfg.find_path(
            [risky_block], frozenset({cfg.raise_exit})
        ) is not None

    def test_finally_runs_on_return_and_exception_paths(self):
        func, cfg = cfg_of(
            """\
            def f(path):
                handle = open(path)
                try:
                    return 1
                finally:
                    handle.close()
            """
        )
        close_stmt = func.body[1].finalbody[0]
        avoid = frozenset(cfg.blocks_for(close_stmt))
        # finally cloning places the close on several blocks
        assert len(avoid) > 1
        return_block = cfg.blocks_for(func.body[1].body[0])[0]
        # neither the return nor an exception can skip the cleanup
        exits = frozenset({cfg.exit_block, cfg.raise_exit})
        assert cfg.find_path([return_block], exits, avoid) is None
        assert cfg.find_path([return_block], exits) is not None


class TestWithRegions:
    def test_region_covers_body_but_not_the_tail(self):
        func, cfg = cfg_of(
            """\
            def f(lock):
                with lock:
                    a = 1
                b = 2
            """
        )
        region = cfg.with_regions[0]
        inside = cfg.blocks_for(func.body[0].body[0])[0]
        outside = cfg.blocks_for(func.body[1])[0]
        assert inside in region.body_blocks
        assert outside not in region.body_blocks


class TestHandlerCatchesAll:
    def _handler(self, source: str) -> ast.ExceptHandler:
        func = parse_function(source)
        return func.body[0].handlers[0]

    def test_bare_except(self):
        handler = self._handler(
            """\
            def f():
                try:
                    pass
                except:
                    pass
            """
        )
        assert handler_catches_all(handler)

    def test_narrow_except(self):
        handler = self._handler(
            """\
            def f():
                try:
                    pass
                except ValueError:
                    pass
            """
        )
        assert not handler_catches_all(handler)

    def test_tuple_with_broad_member(self):
        handler = self._handler(
            """\
            def f():
                try:
                    pass
                except (ValueError, Exception):
                    pass
            """
        )
        assert handler_catches_all(handler)
