"""Passes ``resource-lifecycle``: every handle is released on every
path, exception edges included."""


def touch_header(path):
    handle = open(path, "rb")
    try:
        handle.readline()
    finally:
        handle.close()


def count_lines(path):
    total = 0
    with open(path, "rb") as handle:
        for _ in handle:
            total += 1
    return total
