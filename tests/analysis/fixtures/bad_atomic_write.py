"""Violates ``atomic-write``: raw write handle and ad-hoc rename-into-place."""

import json
import os


def publish(payload, destination):
    handle = open(destination + ".tmp", "w", encoding="utf-8")
    json.dump(payload, handle)
    handle.close()
    os.rename(destination + ".tmp", destination)
