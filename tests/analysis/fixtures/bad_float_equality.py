"""Violates ``float-equality``: tolerance checks written as ``==``."""


def test_scores(scores):
    assert scores.accuracy == 0.95
    assert scores.loss != 0.0
    assert float(scores.f1) == scores.precision
