"""Violates ``lock-discipline``: a guarded counter mutated lock-free."""

import threading


class Metrics:
    def __init__(self):
        self._lock = threading.Lock()
        self._served = 0

    def observe(self):
        with self._lock:
            self._served += 1

    def reset(self):
        self._served = 0
