"""Clean for ``determinism``: seeded generators, monotonic clocks."""

import time

import numpy as np


def sample_weights(n, seed):
    rng = np.random.default_rng(seed)
    children = np.random.SeedSequence(seed).spawn(2)
    started = time.perf_counter()
    return rng.normal(size=n), children, time.perf_counter() - started
