"""Violates ``lock-order``: opposite acquisition orders, blocking and
re-acquisition under a held lock."""

import threading
import time


class Gateway:
    def __init__(self, partner: "Partner"):
        self._lock = threading.Lock()
        self.partner = partner

    def forward(self):
        # Takes Gateway._lock then Partner._lock (via poke) ...
        with self._lock:
            self.partner.poke()

    def flush(self):
        with self._lock:
            return True

    def sleepy(self):
        with self._lock:
            time.sleep(0.5)

    def reenter(self):
        with self._lock:
            with self._lock:
                return True


class Partner:
    def __init__(self):
        self._lock = threading.Lock()
        self.gateway = None

    def attach(self, gateway: "Gateway"):
        self.gateway = gateway

    def poke(self):
        with self._lock:
            return True

    def escalate(self):
        # ... while this path takes Partner._lock then Gateway._lock.
        with self._lock:
            self.gateway.flush()
