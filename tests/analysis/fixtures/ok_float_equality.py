"""Clean for ``float-equality``: approx for tolerances, pragma for a
deliberate bit-exactness assertion."""

import pytest


def test_scores(scores):
    assert scores.accuracy == pytest.approx(0.95, abs=1e-6)
    assert scores.loss == 0.0  # repro: allow[float-equality] — resumed run is bit-for-bit
