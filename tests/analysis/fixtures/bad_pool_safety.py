"""Violates ``pool-safety``: unpicklable callables cross process pools."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process


def run(items):
    def work(item):
        return item * 2

    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work, item) for item in items]
    worker = Process(target=lambda: None)
    broken = ProcessPoolExecutor(initializer=lambda: None)
    return futures, worker, broken
