"""Clean for ``broad-except``: MagicError taxonomy plus one pragma'd
fault-isolation boundary."""

from repro.exceptions import ConfigurationError, MagicError


def risky(payload):
    try:
        return payload["value"]
    except KeyError as exc:
        raise ConfigurationError(f"missing value: {exc}")


def boundary(fn):
    try:
        return ("ok", fn())
    except MagicError as exc:
        return ("fail", str(exc))
    except Exception as exc:  # repro: allow[broad-except] — fault isolation boundary
        return ("fail", f"{type(exc).__name__}: {exc}")
