"""Violates ``resource-lifecycle``: file handles leak on exception and
early-return paths."""


def touch_header(path):
    handle = open(path, "rb")
    handle.readline()  # raises -> the close below never runs
    handle.close()


def probe(path, enabled):
    handle = open(path, "rb")
    if not enabled:
        return False  # early return leaks the handle on a normal path
    handle.close()
    return True
