"""Passes ``fault-contract``: the process entry point maps every fault
into a structured outcome instead of dying."""

import multiprocessing


def transform(payload):
    if payload is None:
        raise ValueError("no payload")
    return payload


def guarded_worker(payload):
    try:
        result = transform(payload)
        outcome = ("ok", result)
    except Exception as exc:  # repro: allow[broad-except] — boundary maps faults into the taxonomy
        outcome = ("fail", f"{type(exc).__name__}: {exc}")
    return outcome


def spawn(payload):
    process = multiprocessing.Process(target=guarded_worker, args=(payload,))
    try:
        process.start()
    finally:
        process.join()
