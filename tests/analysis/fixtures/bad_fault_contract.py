"""Violates ``fault-contract``: a process entry point lets exceptions
escape instead of mapping them into the failure taxonomy."""

import multiprocessing


def validate(payload):
    if not isinstance(payload, dict):
        raise ValueError("payload must be a mapping")
    return payload


def risky_worker(payload):
    if payload is None:
        raise ValueError("no payload given")
    checked = validate(payload)
    return checked


def spawn(payload):
    process = multiprocessing.Process(target=risky_worker, args=(payload,))
    try:
        process.start()
    finally:
        process.join()
