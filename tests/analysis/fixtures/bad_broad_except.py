"""Violates ``broad-except``: unstructured failure handling."""


def risky(payload):
    try:
        return payload["value"]
    except Exception as exc:
        raise Exception(f"lookup failed: {exc}")


def swallow(payload):
    try:
        return payload["value"]
    except:
        return None
