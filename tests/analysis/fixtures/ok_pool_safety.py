"""Clean for ``pool-safety``: module-level functions cross the boundary,
and thread pools (which never pickle) may still take lambdas."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import Process


def work(item):
    return item * 2


def run(items):
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(work, item) for item in items]
    with ThreadPoolExecutor(max_workers=2) as tpool:
        threaded = [tpool.submit(lambda: None) for _ in items]
    return futures, threaded, Process(target=work)
