"""Clean for ``lock-discipline``: every mutation of a guarded attribute
holds the lock; unguarded single-thread state stays out of scope."""

import threading


class Metrics:
    def __init__(self):
        self._lock = threading.Lock()
        self._served = 0
        self._label = "idle"

    def observe(self):
        with self._lock:
            self._served += 1

    def reset(self):
        with self._lock:
            self._served = 0

    def rename(self, label):
        # `_label` is never mutated under the lock anywhere in the
        # class, so it is not a guarded attribute.
        self._label = label
