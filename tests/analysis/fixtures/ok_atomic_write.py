"""Clean for ``atomic-write``: context-managed writes; long-lived append
handles go through the crash-safe helper."""

import json

from repro.fileio import JsonlAppendWriter


def publish(payload, destination):
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def journal(path, records):
    writer = JsonlAppendWriter.open(path, fresh=True)
    try:
        for record in records:
            writer.write_record(record)
    finally:
        writer.close()
