"""Violates ``determinism``: global-RNG draws and wall-clock reads."""

import random
import time

import numpy as np


def sample_weights(n):
    jitter = random.random()
    weights = np.random.rand(n)
    np.random.seed(0)
    stamp = time.time()
    return weights, jitter, stamp
