"""Passes ``lock-order``: one global acquisition order, nothing blocking
while a lock is held."""

import threading
import time


class Sink:
    def __init__(self):
        self._lock = threading.Lock()
        self.accepted = 0

    def push(self, item):
        with self._lock:
            self.accepted += 1


class Source:
    def __init__(self, sink: "Sink"):
        self._lock = threading.Lock()
        self.sink = sink

    def forward(self, item):
        # Consistent nesting (always Source._lock before Sink._lock) is
        # an acyclic order, so it is accepted.
        with self._lock:
            self.sink.push(item)

    def pace(self, item):
        # Sleeping is fine once the lock has been released.
        with self._lock:
            staged = item
        time.sleep(0.0)
        self.sink.push(staged)
