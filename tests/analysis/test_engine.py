"""Engine mechanics: registry, pragmas, discovery, baselines, formatting."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Finding,
    LintEngine,
    apply_baseline,
    findings_to_json,
    format_findings_github,
    load_baseline,
    pragma_rules_by_line,
    registered_rules,
    write_baseline,
)
from repro.exceptions import ConfigurationError

from tests.analysis.helpers import (
    FIXTURES,
    LIBRARY_PATH,
    fixture_text,
    lint_fixture,
)

EXPECTED_RULES = {
    "atomic-write",
    "broad-except",
    "determinism",
    "fault-contract",
    "float-equality",
    "lock-discipline",
    "lock-order",
    "pool-safety",
    "resource-lifecycle",
}


class TestRegistry:
    def test_all_nine_rules_registered(self):
        assert set(registered_rules()) == EXPECTED_RULES

    def test_unknown_select_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="no-such-rule"):
            LintEngine(select=["no-such-rule"])

    def test_select_narrows_the_rule_set(self):
        findings = lint_fixture("bad_determinism.py", select=["atomic-write"])
        assert findings == []


class TestPragmas:
    def test_single_rule(self):
        mapping = pragma_rules_by_line("x = 1  # repro: allow[determinism]\n")
        assert mapping[1] == frozenset({"determinism"})

    def test_comma_list_and_free_form_reason(self):
        text = (
            "y = 2  "
            "# repro: allow[determinism, float-equality] — seeded upstream\n"
        )
        mapping = pragma_rules_by_line(text)
        assert mapping[1] == frozenset({"determinism", "float-equality"})

    def test_pragma_suppresses_only_its_line(self):
        source = (
            "import time\n"
            "a = time.time()  # repro: allow[determinism]\n"
            "b = time.time()\n"
        )
        findings = LintEngine(select=["determinism"]).lint_source(
            source, LIBRARY_PATH
        )
        assert [finding.line for finding in findings] == [3]

    def test_pragma_for_another_rule_does_not_suppress(self):
        source = "import time\nstamp = time.time()  # repro: allow[atomic-write]\n"
        findings = LintEngine(select=["determinism"]).lint_source(
            source, LIBRARY_PATH
        )
        assert len(findings) == 1


class TestDiscovery:
    def test_directory_walk_skips_fixture_and_cache_dirs(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "fixtures").mkdir(parents=True)
        (pkg / "__pycache__").mkdir()
        (pkg / "a.py").write_text("A = 1\n", encoding="utf-8")
        (pkg / "fixtures" / "fx.py").write_text("B = 2\n", encoding="utf-8")
        (pkg / "__pycache__" / "c.py").write_text("C = 3\n", encoding="utf-8")
        (pkg / "notes.txt").write_text("not python\n", encoding="utf-8")
        assert LintEngine.discover([str(pkg)]) == [str(pkg / "a.py")]

    def test_explicitly_named_files_are_always_included(self):
        target = FIXTURES / "bad_determinism.py"
        assert LintEngine.discover([str(target)]) == [str(target)]

    def test_missing_target_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="does not exist"):
            LintEngine.discover(["/no/such/path.py"])

    def test_syntax_error_becomes_its_own_rule_id(self):
        findings = LintEngine().lint_source("def broken(:\n", LIBRARY_PATH)
        assert [finding.rule for finding in findings] == ["syntax-error"]


def _finding(message: str = "msg", line: int = 3) -> Finding:
    return Finding(
        path="src/repro/x.py", line=line, col=1, rule="determinism", message=message
    )


class TestBaseline:
    def test_round_trip_is_line_insensitive(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [_finding(line=3)])
        accepted = load_baseline(path)
        drifted = [_finding(line=40)]
        assert apply_baseline(drifted, accepted) == []

    def test_matching_is_count_aware(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(path, [_finding(line=3)])
        accepted = load_baseline(path)
        pair = [_finding(line=3), _finding(line=9)]
        assert len(apply_baseline(pair, accepted)) == 1

    def test_unreadable_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_baseline(str(bad))

    def test_wrong_version_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(
            json.dumps({"version": 99, "findings": []}), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="unsupported"):
            load_baseline(str(bad))


class TestFormatting:
    def test_finding_format(self):
        assert _finding().format() == "src/repro/x.py:3:1: [determinism] msg"

    def test_json_payload_shape(self):
        payload = findings_to_json([_finding()])
        assert payload["counts"] == {"determinism": 1}
        assert payload["findings"][0]["line"] == 3
        assert payload["findings"][0]["rule"] == "determinism"

    def test_github_annotation_format(self):
        text = format_findings_github([_finding()])
        assert text == (
            "::error file=src/repro/x.py,line=3,col=1,"
            "title=repro lint [determinism]::msg"
        )

    def test_github_annotation_escapes_message_and_properties(self):
        finding = Finding(
            path="src/a,b.py", line=1, col=2, rule="determinism",
            message="50% broken\nsecond: line",
        )
        text = format_findings_github([finding])
        assert "file=src/a%2Cb.py" in text
        assert text.endswith("::50%25 broken%0Asecond: line")
        assert "\n" not in text


class TestParallelAndCache:
    def _library(self, tmp_path):
        library = tmp_path / "library"
        library.mkdir()
        for name in ("bad_determinism.py", "bad_atomic_write.py"):
            (library / name).write_text(fixture_text(name), encoding="utf-8")
        return library

    def test_parallel_run_matches_serial_findings(self, tmp_path):
        library = self._library(tmp_path)
        serial = LintEngine().lint_paths([str(library)])
        parallel = LintEngine(jobs=4).lint_paths([str(library)])
        assert serial != []
        assert parallel == serial

    def test_warm_cache_reproduces_findings(self, tmp_path):
        library = self._library(tmp_path)
        cache = tmp_path / "lint-cache.json"
        cold = LintEngine(cache_path=str(cache)).lint_paths([str(library)])
        assert cache.exists()
        warm = LintEngine(cache_path=str(cache)).lint_paths([str(library)])
        assert warm == cold != []

    def test_cache_invalidates_on_file_change(self, tmp_path):
        library = self._library(tmp_path)
        cache = tmp_path / "lint-cache.json"
        LintEngine(cache_path=str(cache)).lint_paths([str(library)])
        target = library / "bad_determinism.py"
        target.write_text("ANSWER = 42\n", encoding="utf-8")
        findings = LintEngine(cache_path=str(cache)).lint_paths([str(library)])
        assert all(finding.path != str(target) for finding in findings)
