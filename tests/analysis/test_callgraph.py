"""Call-graph indexing and conservative whole-program name resolution."""

from __future__ import annotations

import ast
import textwrap
from typing import Tuple

from repro.analysis import CallGraph, FunctionInfo
from repro.analysis.callgraph import (
    dotted_parts,
    iter_calls,
    module_name_for_slug,
)


def build(*modules: Tuple[str, str]) -> CallGraph:
    return CallGraph.build(
        [(slug, ast.parse(textwrap.dedent(source))) for slug, source in modules]
    )


def first_call(graph: CallGraph, qualname: str) -> Tuple[FunctionInfo, ast.Call]:
    func = graph.functions[qualname]
    return func, next(iter_calls(func.node))


class TestNaming:
    def test_slug_to_module_name(self):
        assert module_name_for_slug("src/repro/serve/fleet.py") == "repro.serve.fleet"
        assert module_name_for_slug("tools/pkg/__init__.py") == "tools.pkg"

    def test_dotted_parts_of_attribute_chain(self):
        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_parts(expr) == ("a", "b", "c")

    def test_dynamic_receiver_is_unresolvable(self):
        expr = ast.parse("f().method", mode="eval").body
        assert dotted_parts(expr) is None


class TestResolution:
    def test_cross_module_function(self):
        graph = build(
            (
                "src/repro/a.py",
                """\
                from repro.b import helper


                def caller():
                    return helper()
                """,
            ),
            (
                "src/repro/b.py",
                """\
                def helper():
                    return 1
                """,
            ),
        )
        caller, call = first_call(graph, "repro.a.caller")
        resolved = graph.resolve_call(caller, call)
        assert resolved is not None
        assert resolved.qualname == "repro.b.helper"

    def test_self_method(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                class Box:
                    def get(self):
                        return self.compute()

                    def compute(self):
                        return 1
                """,
            )
        )
        get, call = first_call(graph, "repro.m.Box.get")
        resolved = graph.resolve_call(get, call)
        assert resolved is not None
        assert resolved.qualname == "repro.m.Box.compute"

    def test_inherited_method_found_through_bases(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                class Base:
                    def ping(self):
                        return True


                class Child(Base):
                    def go(self):
                        return self.ping()
                """,
            )
        )
        go, call = first_call(graph, "repro.m.Child.go")
        resolved = graph.resolve_call(go, call)
        assert resolved is not None
        assert resolved.qualname == "repro.m.Base.ping"

    def test_unresolved_call_stays_none(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                import json


                def load(text):
                    return json.loads(text)
                """,
            )
        )
        load, call = first_call(graph, "repro.m.load")
        assert graph.resolve_call(load, call) is None

    def test_target_reference_resolves_like_a_call(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                import threading


                def worker():
                    return None


                def spawn():
                    return threading.Thread(target=worker)
                """,
            )
        )
        spawn = graph.functions["repro.m.spawn"]
        reference = ast.parse("worker", mode="eval").body
        resolved = graph.resolve_target_expr(spawn, reference)
        assert resolved is not None
        assert resolved.qualname == "repro.m.worker"


class TestAttributeTypes:
    def test_annotated_parameter_feeds_the_chain(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                class Engine:
                    def ping(self):
                        return True


                class Owner:
                    def __init__(self, engine: "Engine"):
                        self.engine = engine

                    def poke(self):
                        return self.engine.ping()
                """,
            )
        )
        poke, call = first_call(graph, "repro.m.Owner.poke")
        resolved = graph.resolve_call(poke, call)
        assert resolved is not None
        assert resolved.qualname == "repro.m.Engine.ping"

    def test_constructor_assignment_feeds_the_chain(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                class Engine:
                    def ping(self):
                        return True


                class Owner:
                    def __init__(self):
                        self.engine = Engine()

                    def poke(self):
                        return self.engine.ping()
                """,
            )
        )
        poke, call = first_call(graph, "repro.m.Owner.poke")
        resolved = graph.resolve_call(poke, call)
        assert resolved is not None
        assert resolved.qualname == "repro.m.Engine.ping"

    def test_plain_none_assignment_infers_nothing(self):
        graph = build(
            (
                "src/repro/m.py",
                """\
                class Owner:
                    def __init__(self):
                        self.engine = None

                    def poke(self):
                        return self.engine.ping()
                """,
            )
        )
        poke, call = first_call(graph, "repro.m.Owner.poke")
        assert graph.resolve_call(poke, call) is None
