"""Shared helpers for the ``repro.analysis`` test suite.

Fixture sources live under ``tests/analysis/fixtures/`` — a directory
the engine's discovery deliberately skips — and are linted here as raw
text presented under *virtual* paths, so each fixture can be scoped as
library or test code independent of where it physically sits.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import Finding, LintEngine

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: Virtual locations used to scope fixture sources.
LIBRARY_PATH = "src/repro/fixture_module.py"
TEST_PATH = "tests/test_fixture_module.py"


def fixture_text(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


def lint_fixture(
    name: str,
    virtual_path: str = LIBRARY_PATH,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint a fixture file's text as though it lived at ``virtual_path``."""
    return LintEngine(select=select).lint_source(fixture_text(name), virtual_path)
