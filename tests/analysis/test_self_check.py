"""The shipped tree is lint-clean, and the CLI gate behaves end-to-end."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import LintEngine
from repro.cli import main

from tests.analysis.helpers import FIXTURES, fixture_text

REPO_ROOT = Path(__file__).resolve().parents[2]

ALL_RULE_IDS = (
    "atomic-write",
    "broad-except",
    "determinism",
    "fault-contract",
    "float-equality",
    "lock-discipline",
    "lock-order",
    "pool-safety",
    "resource-lifecycle",
)


class TestShippedTree:
    def test_library_is_lint_clean(self):
        assert LintEngine().lint_paths([str(REPO_ROOT / "src" / "repro")]) == []

    def test_test_suite_is_lint_clean(self):
        assert LintEngine().lint_paths([str(REPO_ROOT / "tests")]) == []


class TestCliGate:
    def test_clean_tree_exits_zero(self, capsys):
        rc = main(["lint", str(REPO_ROOT / "src" / "repro")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_list_rules_names_every_rule(self, capsys):
        rc = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert rc == 0
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_lint_requires_paths(self, capsys):
        assert main(["lint"]) == 2

    def test_unknown_rule_is_a_usage_error(self, capsys):
        rc = main(
            ["lint", "--select", "no-such-rule", str(REPO_ROOT / "src" / "repro")]
        )
        assert rc == 2


LIBRARY_FIXTURES = [
    ("bad_determinism.py", "determinism"),
    ("bad_pool_safety.py", "pool-safety"),
    ("bad_broad_except.py", "broad-except"),
    ("bad_atomic_write.py", "atomic-write"),
    ("bad_lock_discipline.py", "lock-discipline"),
    ("bad_lock_order.py", "lock-order"),
    ("bad_fault_contract.py", "fault-contract"),
    ("bad_resource_lifecycle.py", "resource-lifecycle"),
]


class TestPerRuleExitCodes:
    @pytest.mark.parametrize("fixture, rule_id", LIBRARY_FIXTURES)
    def test_library_fixture_fails_with_its_rule_id(
        self, tmp_path, capsys, fixture, rule_id
    ):
        target = tmp_path / "library" / fixture
        target.parent.mkdir()
        shutil.copyfile(FIXTURES / fixture, target)
        rc = main(["lint", "--format", "json", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert set(payload["counts"]) == {rule_id}

    def test_float_equality_fixture_fails_under_tests(self, tmp_path, capsys):
        target = tmp_path / "tests" / "test_scores.py"
        target.parent.mkdir()
        shutil.copyfile(FIXTURES / "bad_float_equality.py", target)
        rc = main(["lint", "--format", "json", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert set(payload["counts"]) == {"float-equality"}

    def test_ok_fixtures_exit_zero(self, tmp_path, capsys):
        library = tmp_path / "library"
        library.mkdir()
        for fixture in (
            "ok_determinism.py",
            "ok_pool_safety.py",
            "ok_broad_except.py",
            "ok_atomic_write.py",
            "ok_lock_discipline.py",
            "ok_lock_order.py",
            "ok_fault_contract.py",
            "ok_resource_lifecycle.py",
        ):
            shutil.copyfile(FIXTURES / fixture, library / fixture)
        tests_dir = tmp_path / "tests"
        tests_dir.mkdir()
        shutil.copyfile(
            FIXTURES / "ok_float_equality.py", tests_dir / "test_scores.py"
        )
        rc = main(["lint", str(library), str(tests_dir)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out


class TestBaselineWorkflow:
    def test_write_then_gate_then_catch_fresh_debt(self, tmp_path, capsys):
        target = tmp_path / "library" / "legacy.py"
        target.parent.mkdir()
        target.write_text(fixture_text("bad_atomic_write.py"), encoding="utf-8")
        baseline = tmp_path / "lint-baseline.json"

        rc = main(
            ["lint", "--baseline", str(baseline), "--write-baseline", str(target)]
        )
        assert rc == 0
        capsys.readouterr()

        rc = main(["lint", "--baseline", str(baseline), str(target)])
        assert rc == 0
        capsys.readouterr()

        fresh = target.parent / "fresh.py"
        fresh.write_text(fixture_text("bad_lock_discipline.py"), encoding="utf-8")
        rc = main(
            [
                "lint",
                "--format",
                "json",
                "--baseline",
                str(baseline),
                str(target),
                str(fresh),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert set(payload["counts"]) == {"lock-discipline"}

    def test_write_baseline_requires_baseline_path(self, tmp_path, capsys):
        target = tmp_path / "module.py"
        target.write_text("X = 1\n", encoding="utf-8")
        assert main(["lint", "--write-baseline", str(target)]) == 2
