"""Per-rule behaviour: paired bad/ok fixtures plus targeted edge cases."""

from __future__ import annotations

import textwrap
from typing import List, Optional, Sequence

from repro.analysis import Finding, LintEngine

from tests.analysis.helpers import LIBRARY_PATH, TEST_PATH, lint_fixture


def lint_text(
    source: str,
    path: str = LIBRARY_PATH,
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    return LintEngine(select=select).lint_source(textwrap.dedent(source), path)


class TestDeterminism:
    def test_bad_fixture(self):
        findings = lint_fixture("bad_determinism.py")
        assert [finding.rule for finding in findings] == ["determinism"] * 4
        assert [finding.line for finding in findings] == [10, 11, 12, 13]

    def test_ok_fixture(self):
        assert lint_fixture("ok_determinism.py") == []

    def test_tests_are_exempt(self):
        assert lint_fixture("bad_determinism.py", TEST_PATH) == []

    def test_from_time_import_time_alias(self):
        findings = lint_text(
            """\
            from time import time


            def stamp():
                return time()
            """,
            select=["determinism"],
        )
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_seeded_random_instance_is_legal(self):
        findings = lint_text(
            """\
            import random


            def draw(seed):
                return random.Random(seed).random()
            """,
            select=["determinism"],
        )
        assert findings == []


class TestPoolSafety:
    def test_bad_fixture(self):
        findings = lint_fixture("bad_pool_safety.py")
        assert [finding.rule for finding in findings] == ["pool-safety"] * 3
        assert [finding.line for finding in findings] == [12, 13, 14]

    def test_ok_fixture(self):
        assert lint_fixture("ok_pool_safety.py") == []

    def test_rule_applies_in_tests_too(self):
        assert lint_fixture("bad_pool_safety.py", TEST_PATH) != []

    def test_worker_spec_fn_lambda_flagged_hooks_legal(self):
        findings = lint_text(
            """\
            from repro.features.pool import WorkerSpec

            SPEC = WorkerSpec(fn=lambda payload: payload, validate=lambda r: r)
            """,
            select=["pool-safety"],
        )
        assert len(findings) == 1
        assert "WorkerSpec" in findings[0].message


class TestBroadExcept:
    def test_bad_fixture(self):
        findings = lint_fixture("bad_broad_except.py")
        assert [finding.rule for finding in findings] == ["broad-except"] * 3
        assert [finding.line for finding in findings] == [7, 8, 14]

    def test_ok_fixture_with_pragmad_boundary(self):
        assert lint_fixture("ok_broad_except.py") == []

    def test_tests_are_exempt(self):
        assert lint_fixture("bad_broad_except.py", TEST_PATH) == []

    def test_tuple_handler_with_broad_member_flagged(self):
        findings = lint_text(
            """\
            def f():
                try:
                    return 1
                except (ValueError, Exception):
                    return 0
            """,
            select=["broad-except"],
        )
        assert len(findings) == 1


class TestAtomicWrite:
    def test_bad_fixture(self):
        findings = lint_fixture("bad_atomic_write.py")
        assert [finding.rule for finding in findings] == ["atomic-write"] * 2
        assert [finding.line for finding in findings] == [8, 11]

    def test_ok_fixture(self):
        assert lint_fixture("ok_atomic_write.py") == []

    def test_staged_swap_modules_may_rename(self):
        source = """\
            import os


            def swap(staging, destination):
                os.replace(staging, destination)
            """
        managed = lint_text(
            source, path="src/repro/datasets/cache.py", select=["atomic-write"]
        )
        elsewhere = lint_text(
            source, path="src/repro/features/other.py", select=["atomic-write"]
        )
        assert managed == []
        assert len(elsewhere) == 1

    def test_read_mode_open_outside_with_is_legal(self):
        findings = lint_text(
            """\
            def read(path):
                handle = open(path)
                data = handle.read()
                handle.close()
                return data
            """,
            select=["atomic-write"],
        )
        assert findings == []


class TestFloatEquality:
    def test_bad_fixture_under_tests(self):
        findings = lint_fixture("bad_float_equality.py", TEST_PATH)
        assert [finding.rule for finding in findings] == ["float-equality"] * 3
        assert [finding.line for finding in findings] == [5, 6, 7]

    def test_ok_fixture_approx_and_pragma(self):
        assert lint_fixture("ok_float_equality.py", TEST_PATH) == []

    def test_library_code_is_exempt(self):
        assert lint_fixture("bad_float_equality.py", LIBRARY_PATH) == []

    def test_int_equality_is_legal(self):
        findings = lint_text(
            """\
            def test_count(result):
                assert result.count == 3
            """,
            path=TEST_PATH,
            select=["float-equality"],
        )
        assert findings == []


class TestLockDiscipline:
    def test_bad_fixture(self):
        findings = lint_fixture("bad_lock_discipline.py")
        assert [finding.rule for finding in findings] == ["lock-discipline"]
        assert findings[0].line == 16
        assert "_served" in findings[0].message

    def test_ok_fixture_unguarded_attr_stays_out_of_scope(self):
        assert lint_fixture("ok_lock_discipline.py") == []

    def test_condition_guards_like_a_lock(self):
        findings = lint_text(
            """\
            import threading


            class Queue:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []

                def put(self, item):
                    with self._cond:
                        self._items.append(item)

                def drop_all(self):
                    self._items.clear()
            """,
            select=["lock-discipline"],
        )
        assert len(findings) == 1
        assert "_items" in findings[0].message


class TestLockOrder:
    def test_bad_fixture_reports_cycle_blocking_and_reacquire(self):
        findings = lint_fixture("bad_lock_order.py")
        assert [finding.rule for finding in findings] == ["lock-order"] * 3
        assert [finding.line for finding in findings] == [16, 24, 28]
        messages = "\n".join(finding.message for finding in findings)
        assert "lock-order cycle" in messages
        assert "time.sleep" in messages
        assert "re-acquired" in messages

    def test_ok_fixture_consistent_order(self):
        assert lint_fixture("ok_lock_order.py") == []

    def test_tests_are_exempt(self):
        assert lint_fixture("bad_lock_order.py", TEST_PATH) == []

    def test_condition_wait_on_the_held_condition_is_exempt(self):
        findings = lint_text(
            """\
            import threading


            class Box:
                def __init__(self):
                    self._cond = threading.Condition()

                def take(self):
                    with self._cond:
                        self._cond.wait()
            """,
            select=["lock-order"],
        )
        assert findings == []

    def test_untimed_join_under_a_lock_is_blocking(self):
        findings = lint_text(
            """\
            import threading


            class Owner:
                def __init__(self, worker):
                    self._lock = threading.Lock()
                    self.worker = worker

                def stop(self):
                    with self._lock:
                        self.worker.join()
            """,
            select=["lock-order"],
        )
        assert len(findings) == 1
        assert "un-timed join" in findings[0].message


class TestFaultContract:
    def test_bad_fixture_process_entry_point(self):
        findings = lint_fixture("bad_fault_contract.py")
        assert [finding.rule for finding in findings] == ["fault-contract"] * 2
        assert [finding.line for finding in findings] == [15, 16]
        assert "process entry point" in findings[0].message

    def test_ok_fixture_catch_all_boundary(self):
        assert lint_fixture("ok_fault_contract.py") == []

    def test_tests_are_exempt(self):
        assert lint_fixture("bad_fault_contract.py", TEST_PATH) == []

    def test_http_do_method_is_a_boundary(self):
        findings = lint_text(
            """\
            from http.server import BaseHTTPRequestHandler


            class Api(BaseHTTPRequestHandler):
                def do_GET(self):
                    raise ValueError("boom")
            """,
            select=["fault-contract"],
        )
        assert len(findings) == 1
        assert "HTTP handler" in findings[0].message

    def test_execute_unit_contract_is_a_boundary(self):
        findings = lint_text(
            """\
            def execute_unit(fn, item):
                return fn(item)
            """,
            select=["fault-contract"],
        )
        assert len(findings) == 1
        assert "fault-isolation contract" in findings[0].message


class TestResourceLifecycle:
    def test_bad_fixture_leaks_on_both_paths(self):
        findings = lint_fixture("bad_resource_lifecycle.py")
        rules = [finding.rule for finding in findings]
        assert rules == ["resource-lifecycle"] * 2
        assert [finding.line for finding in findings] == [6, 12]
        assert "file handle" in findings[0].message

    def test_ok_fixture(self):
        assert lint_fixture("ok_resource_lifecycle.py") == []

    def test_ownership_transfer_ends_the_obligation(self):
        findings = lint_text(
            """\
            def fetch(path):
                handle = open(path, "rb")
                return handle
            """,
            select=["resource-lifecycle"],
        )
        assert findings == []

    def test_close_only_on_the_happy_path_is_reported(self):
        findings = lint_text(
            """\
            def read_size(path):
                handle = open(path, "rb")
                handle.seek(0, 2)
                handle.close()
            """,
            select=["resource-lifecycle"],
        )
        assert len(findings) == 1
        assert "exception path" in findings[0].message

    def test_with_statement_counts_as_the_release(self):
        findings = lint_text(
            """\
            def read_all(path):
                handle = open(path, "rb")
                with handle:
                    handle.seek(0)
            """,
            select=["resource-lifecycle"],
        )
        assert findings == []
