"""Fingerprint invariants: vertex-order independence, determinism,
cross-process stability, and quantization behaviour."""

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimilarityError
from repro.features.acfg import ACFG
from repro.similarity import (
    CfgFingerprint,
    fingerprint_acfg,
    quantize_attributes,
)

from tests.similarity.conftest import extract_acfg

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _random_acfg(seed, num_vertices=12):
    rng = np.random.default_rng(seed)
    adjacency = (rng.random((num_vertices, num_vertices)) < 0.25).astype(
        np.float64
    )
    np.fill_diagonal(adjacency, 0.0)
    attributes = rng.integers(
        0, 200, size=(num_vertices, 11)
    ).astype(np.float64)
    return ACFG(adjacency=adjacency, attributes=attributes, label=0,
                name=f"random-{seed}")


def _permuted(acfg, permutation):
    return ACFG(
        adjacency=acfg.adjacency[np.ix_(permutation, permutation)],
        attributes=acfg.attributes[permutation],
        label=acfg.label,
        name=acfg.name,
    )


class TestVertexOrderInvariance:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_permuting_vertices_preserves_the_fingerprint(
        self, graph_seed, perm_seed
    ):
        acfg = _random_acfg(graph_seed)
        permutation = np.random.default_rng(perm_seed).permutation(
            acfg.num_vertices
        )
        original = fingerprint_acfg(acfg)
        shuffled = fingerprint_acfg(_permuted(acfg, permutation))
        assert original.digest() == shuffled.digest()
        assert original.labels == shuffled.labels

    def test_permuting_a_real_extracted_graph(self):
        acfg = extract_acfg("Ramnit", 0)
        permutation = np.random.default_rng(3).permutation(
            acfg.num_vertices
        )
        assert (
            fingerprint_acfg(acfg).digest()
            == fingerprint_acfg(_permuted(acfg, permutation)).digest()
        )


class TestDeterminism:
    def test_same_graph_same_fingerprint(self):
        acfg = _random_acfg(7)
        assert (
            fingerprint_acfg(acfg).digest()
            == fingerprint_acfg(acfg).digest()
        )

    def test_fingerprint_is_stable_across_processes(self):
        """The digest computed in a fresh interpreter matches ours.

        Python's builtin ``hash()`` is process-salted; this pins the
        fingerprint to salt-free hashing, which is what lets fleet
        replicas and offline dedup share one fingerprint vocabulary.
        """
        script = (
            "from tests.similarity.conftest import extract_acfg\n"
            "from repro.similarity import fingerprint_acfg\n"
            "print(fingerprint_acfg(extract_acfg('Lollipop', 1)).digest())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [REPO_SRC, os.path.join(REPO_SRC, "..")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        ours = fingerprint_acfg(extract_acfg("Lollipop", 1)).digest()
        assert child.stdout.strip() == ours


class TestQuantization:
    def test_log8_bucket_edges(self):
        values = np.array([[0.0, 1.0, 6.0, 7.0, 62.0, 63.0, 510.0, 511.0]])
        assert quantize_attributes(values).tolist() == [
            [0, 0, 0, 1, 1, 2, 2, 3]
        ]

    def test_negative_values_clamp_to_bucket_zero(self):
        assert quantize_attributes(np.array([[-5.0, -0.5]])).tolist() == [
            [0, 0]
        ]

    def test_small_perturbation_stays_in_bucket(self):
        base = np.array([[10.0, 20.0, 40.0]])
        bumped = base + 3.0
        assert (
            quantize_attributes(base).tolist()
            == quantize_attributes(bumped).tolist()
        )


class TestFingerprintApi:
    def test_negative_iterations_rejected(self):
        with pytest.raises(SimilarityError):
            fingerprint_acfg(_random_acfg(0), iterations=-1)

    def test_zero_iterations_supported(self):
        fingerprint = fingerprint_acfg(_random_acfg(0), iterations=0)
        assert fingerprint.iterations == 0
        assert fingerprint.size > 0

    def test_incomparable_iterations_raise(self):
        acfg = _random_acfg(1)
        two = fingerprint_acfg(acfg, iterations=2)
        three = fingerprint_acfg(acfg, iterations=3)
        with pytest.raises(SimilarityError):
            two.jaccard(three)

    def test_self_jaccard_is_one(self):
        fingerprint = fingerprint_acfg(_random_acfg(2))
        assert fingerprint.jaccard(fingerprint) == pytest.approx(1.0)

    def test_size_counts_both_streams(self):
        acfg = _random_acfg(3, num_vertices=5)
        fingerprint = fingerprint_acfg(acfg, iterations=2)
        # attributed stream (weight 1) + structure stream (weight 2),
        # (iterations + 1) rounds each, 5 vertices.
        assert fingerprint.size == 5 * 3 * (1 + 2)

    def test_expanded_elements_are_distinct(self):
        fingerprint = fingerprint_acfg(_random_acfg(4))
        elements = fingerprint.expanded_elements()
        assert elements.size == fingerprint.size
        assert np.unique(elements).size == elements.size
