"""Minhash signatures: reproducibility and estimation accuracy."""

import numpy as np
import pytest

from repro.exceptions import SimilarityError
from repro.similarity import CfgFingerprint, MinHasher, estimated_jaccard

from tests.similarity.test_fingerprint import _random_acfg
from repro.similarity import fingerprint_acfg


class TestReproducibility:
    def test_two_hashers_agree_bit_for_bit(self):
        fingerprint = fingerprint_acfg(_random_acfg(0))
        first = MinHasher().signature(fingerprint)
        second = MinHasher().signature(fingerprint)
        assert first.dtype == np.uint64
        assert np.array_equal(first, second)

    def test_different_seed_different_signature(self):
        fingerprint = fingerprint_acfg(_random_acfg(0))
        default = MinHasher().signature(fingerprint)
        other = MinHasher(seed=1234).signature(fingerprint)
        assert not np.array_equal(default, other)

    def test_signature_width_matches_permutations(self):
        fingerprint = fingerprint_acfg(_random_acfg(1))
        assert MinHasher(num_permutations=64).signature(
            fingerprint
        ).shape == (64,)


class TestEstimation:
    def test_identical_fingerprints_estimate_one(self):
        fingerprint = fingerprint_acfg(_random_acfg(2))
        hasher = MinHasher()
        signature = hasher.signature(fingerprint)
        assert estimated_jaccard(signature, signature) == pytest.approx(1.0)

    def test_estimate_tracks_exact_jaccard(self):
        """Signature agreement approximates the true multiset Jaccard.

        With 128 permutations the standard error is < 0.05; a 0.15 bound
        keeps the test deterministic-tight without flaking on the
        fixed-seed hash family.
        """
        hasher = MinHasher()
        for seed_a, seed_b in [(0, 1), (2, 3), (4, 5)]:
            fp_a = fingerprint_acfg(_random_acfg(seed_a))
            fp_b = fingerprint_acfg(_random_acfg(seed_b))
            exact = fp_a.jaccard(fp_b)
            estimate = estimated_jaccard(
                hasher.signature(fp_a), hasher.signature(fp_b)
            )
            assert abs(estimate - exact) < 0.15


class TestValidation:
    def test_empty_fingerprint_rejected(self):
        empty = CfgFingerprint(labels=(), num_vertices=0, iterations=3)
        with pytest.raises(SimilarityError):
            MinHasher().signature(empty)

    def test_width_mismatch_rejected(self):
        fingerprint = fingerprint_acfg(_random_acfg(3))
        wide = MinHasher(num_permutations=128).signature(fingerprint)
        narrow = MinHasher(num_permutations=64).signature(fingerprint)
        with pytest.raises(SimilarityError):
            estimated_jaccard(wide, narrow)

    def test_bad_permutation_count_rejected(self):
        with pytest.raises(SimilarityError):
            MinHasher(num_permutations=0)
