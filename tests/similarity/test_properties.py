"""Calibration properties of the fingerprint on the synthetic corpus.

These pin the separation the serving tier and dedup rely on: junk-code
re-obfuscations of one sample stay *above* the default threshold while
distinct samples — even of the same family — stay *below* it.  The
corridor was measured at variants >= ~0.57 estimated Jaccard versus
distinct <= ~0.38, with the default threshold 0.5 in between; the
asserts leave slack inside that corridor so a marginal regeneration
drift fails loudly only when the separation actually degrades.
"""

from repro.similarity import (
    DEFAULT_SIMILARITY_THRESHOLD,
    MinHasher,
    estimated_jaccard,
    fingerprint_acfg,
)

from tests.similarity.conftest import FAMILIES, extract_acfg


def _estimate(acfg_a, acfg_b):
    hasher = MinHasher()
    return estimated_jaccard(
        hasher.signature(fingerprint_acfg(acfg_a)),
        hasher.signature(fingerprint_acfg(acfg_b)),
    )


class TestNearDuplicateSeparation:
    def test_junk_variants_score_above_the_default_threshold(
        self, base_acfgs, variant_acfgs
    ):
        for family in FAMILIES:
            estimate = _estimate(base_acfgs[family], variant_acfgs[family])
            assert estimate >= DEFAULT_SIMILARITY_THRESHOLD, (
                f"{family} junk variant scored {estimate:.3f}, below the "
                f"default threshold {DEFAULT_SIMILARITY_THRESHOLD}"
            )

    def test_junk_variants_keep_exact_jaccard_high(
        self, base_acfgs, variant_acfgs
    ):
        for family in FAMILIES:
            exact = fingerprint_acfg(base_acfgs[family]).jaccard(
                fingerprint_acfg(variant_acfgs[family])
            )
            assert exact >= DEFAULT_SIMILARITY_THRESHOLD

    def test_distinct_families_score_below_the_default_threshold(
        self, base_acfgs
    ):
        families = list(FAMILIES)
        for position, family_a in enumerate(families):
            for family_b in families[position + 1:]:
                estimate = _estimate(
                    base_acfgs[family_a], base_acfgs[family_b]
                )
                assert estimate < DEFAULT_SIMILARITY_THRESHOLD, (
                    f"{family_a} vs {family_b} scored {estimate:.3f}, at or "
                    f"above the default threshold"
                )

    def test_same_family_different_sample_scores_below_threshold(self):
        # The tier must not conflate *different* programs of one family:
        # that would silently serve sample A's probabilities for B.
        first = extract_acfg("Ramnit", 0)
        second = extract_acfg("Ramnit", 1)
        assert _estimate(first, second) < DEFAULT_SIMILARITY_THRESHOLD
