"""Shared fixtures for the similarity-subsystem tests.

Extraction of the synthetic corpus dominates wall-clock here, so the
base ACFGs (and their junk-code variants) are built once per session
and treated as read-only by every test.
"""

import pytest

from repro.datasets.mskcfg import MSKCFG_PROFILES, generate_mskcfg_sample
from repro.datasets.synthetic_asm import ObfuscationKnobs
from repro.features.pipeline import AcfgPipeline

#: Families exercised by the property tests (a spread of profiles).
FAMILIES = ("Ramnit", "Lollipop", "Kelihos_ver3", "Vundo", "Gatak")


def extract_acfg(family, index, knobs=None):
    """One extracted ACFG, regenerated bit-identically per call."""
    name, text, label = generate_mskcfg_sample(
        family, index, seed=0, knobs=knobs
    )
    result = AcfgPipeline().extract_from_texts([(name, text, label)])
    assert not result.failures
    return result.acfgs[0]


def junk_variant(family, index, extra_junk):
    """The same sample re-obfuscated with more junk-code insertion."""
    base = MSKCFG_PROFILES[family].junk_probability
    knobs = ObfuscationKnobs(
        junk_probability=min(0.95, base + extra_junk)
    )
    return extract_acfg(family, index, knobs=knobs)


@pytest.fixture(scope="session")
def base_acfgs():
    """{family: ACFG} — sample 0 of each test family."""
    return {family: extract_acfg(family, 0) for family in FAMILIES}


@pytest.fixture(scope="session")
def variant_acfgs():
    """{family: ACFG} — junk-code variants of each family's sample 0."""
    return {family: junk_variant(family, 0, 0.25) for family in FAMILIES}
