"""SimilarityIndex: lookup semantics, LRU bounds, thread safety."""

import threading

import pytest

from repro.exceptions import SimilarityError
from repro.similarity import SimilarityIndex, fingerprint_acfg

from tests.similarity.test_fingerprint import _random_acfg


def _signed(index, seed):
    return index.signature(fingerprint_acfg(_random_acfg(seed)))


class TestLookup:
    def test_identical_signature_is_a_full_match(self):
        index = SimilarityIndex()
        signature = _signed(index, 0)
        index.insert("a", signature, payload={"family": "Ramnit"})
        match = index.query(signature)
        assert match is not None
        assert match.key == "a"
        assert match.payload == {"family": "Ramnit"}
        assert match.similarity == pytest.approx(1.0)

    def test_dissimilar_signature_misses(self):
        index = SimilarityIndex()
        index.insert("a", _signed(index, 0), payload=None)
        assert index.query(_signed(index, 99)) is None

    def test_threshold_gates_candidates(self):
        # Even a bucket collision must clear the threshold: an index
        # demanding perfect similarity rejects near-misses.
        strict = SimilarityIndex(threshold=1.0)
        lax = SimilarityIndex(threshold=0.05)
        signature = _signed(strict, 0)
        near = _signed(strict, 1)
        strict.insert("a", signature, payload=None)
        lax.insert("a", signature, payload=None)
        assert strict.query(near) is None
        hit = lax.query(signature)
        assert hit is not None and hit.key == "a"

    def test_best_of_multiple_candidates_wins(self):
        index = SimilarityIndex(threshold=0.05)
        exact = _signed(index, 0)
        index.insert("other", _signed(index, 1), payload=None)
        index.insert("same", exact, payload=None)
        match = index.query(exact)
        assert match is not None
        assert match.key == "same"


class TestBounds:
    def test_lru_eviction_removes_oldest(self):
        index = SimilarityIndex(max_entries=2)
        sig_a, sig_b, sig_c = (_signed(index, s) for s in (0, 1, 2))
        index.insert("a", sig_a, payload=None)
        index.insert("b", sig_b, payload=None)
        index.insert("c", sig_c, payload=None)
        assert len(index) == 2
        assert index.query(sig_a) is None
        assert index.query(sig_b).key == "b"
        assert index.query(sig_c).key == "c"
        assert index.info()["evictions"] == 1

    def test_query_hit_refreshes_recency(self):
        index = SimilarityIndex(max_entries=2)
        sig_a, sig_b, sig_c = (_signed(index, s) for s in (0, 1, 2))
        index.insert("a", sig_a, payload=None)
        index.insert("b", sig_b, payload=None)
        index.query(sig_a)  # refresh "a"; "b" becomes the LRU entry
        index.insert("c", sig_c, payload=None)
        assert index.query(sig_a).key == "a"
        assert index.query(sig_b) is None

    def test_reinsert_replaces_existing_key(self):
        index = SimilarityIndex()
        sig_old, sig_new = _signed(index, 0), _signed(index, 1)
        index.insert("a", sig_old, payload="old")
        index.insert("a", sig_new, payload="new")
        assert len(index) == 1
        assert index.query(sig_new).payload == "new"
        assert index.query(sig_old) is None


class TestValidation:
    def test_threshold_out_of_range_rejected(self):
        for threshold in (0.0, -0.1, 1.5):
            with pytest.raises(SimilarityError):
                SimilarityIndex(threshold=threshold)

    def test_bands_must_divide_permutations(self):
        with pytest.raises(SimilarityError):
            SimilarityIndex(num_permutations=128, num_bands=33)

    def test_max_entries_must_be_positive(self):
        with pytest.raises(SimilarityError):
            SimilarityIndex(max_entries=0)

    def test_iteration_mismatch_rejected_at_signing(self):
        index = SimilarityIndex(iterations=3)
        shallow = fingerprint_acfg(_random_acfg(0), iterations=1)
        with pytest.raises(SimilarityError):
            index.signature(shallow)


class TestThreadSafety:
    def test_concurrent_insert_and_query(self):
        index = SimilarityIndex(max_entries=16, threshold=0.05)
        signatures = [_signed(index, seed) for seed in range(8)]
        errors = []

        def hammer(worker):
            try:
                for round_index in range(50):
                    seed = (worker + round_index) % len(signatures)
                    index.insert(
                        f"{worker}-{seed}", signatures[seed], payload=seed
                    )
                    index.query(signatures[(seed + 1) % len(signatures)])
            except Exception as exc:  # repro: allow[broad-except] — surfaced via errors list
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(index) <= 16
        info = index.info()
        assert info["entries"] <= info["bound"]
