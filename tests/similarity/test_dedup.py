"""Corpus dedup: greedy first-seen-keeps clustering over ACFG lists."""

from repro.similarity import find_near_duplicates, keeper_of

from tests.similarity.conftest import extract_acfg, junk_variant


class TestFindNearDuplicates:
    def test_variants_cluster_under_their_first_seen_keeper(self):
        corpus = [
            extract_acfg("Ramnit", 0),
            extract_acfg("Lollipop", 0),
            junk_variant("Ramnit", 0, 0.2),
            junk_variant("Lollipop", 0, 0.2),
            extract_acfg("Kelihos_ver3", 0),
        ]
        report = find_near_duplicates(corpus)
        assert report.total == 5
        assert report.kept_indices == [0, 1, 4]
        assert report.num_dropped == 2
        dropped = {member.index for member in report.dropped()}
        assert dropped == {2, 3}
        assert keeper_of(report, 2) == corpus[0].name
        assert keeper_of(report, 3) == corpus[1].name
        for cluster in report.clusters:
            for member in cluster.members:
                assert member.similarity >= report.threshold

    def test_clean_corpus_reports_no_clusters(self):
        corpus = [
            extract_acfg("Ramnit", 0),
            extract_acfg("Ramnit", 1),
            extract_acfg("Gatak", 0),
        ]
        report = find_near_duplicates(corpus)
        assert report.clusters == []
        assert report.kept_indices == [0, 1, 2]
        assert report.num_dropped == 0
        assert keeper_of(report, 0) is None

    def test_report_serializes_to_plain_json_types(self):
        corpus = [
            extract_acfg("Vundo", 0),
            junk_variant("Vundo", 0, 0.2),
        ]
        payload = find_near_duplicates(corpus).to_dict()
        assert payload["total"] == 2
        assert payload["kept"] == 1
        assert payload["dropped"] == 1
        cluster = payload["clusters"][0]
        assert cluster["keeper"] == corpus[0].name
        member = cluster["members"][0]
        assert set(member) == {"name", "index", "similarity"}

    def test_determinism_across_runs(self):
        corpus = [
            extract_acfg("Gatak", 0),
            junk_variant("Gatak", 0, 0.25),
            extract_acfg("Lollipop", 1),
        ]
        first = find_near_duplicates(corpus).to_dict()
        second = find_near_duplicates(corpus).to_dict()
        assert first == second
