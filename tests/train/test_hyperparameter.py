"""Tests for the Table II hyper-parameter grid and grid search."""

import pytest

from repro.core.dgcnn import (
    POOLING_ADAPTIVE,
    POOLING_SORT_CONV1D,
    POOLING_SORT_WEIGHTED,
)
from repro.datasets.loader import MalwareDataset
from repro.exceptions import ConfigurationError
from repro.features.acfg import ACFG
from repro.train.hyperparameter import (
    GridSearch,
    HyperparameterSetting,
    amp_grid_from_ratio,
    setting_to_model_config,
    table2_grid,
)


class TestTable2Grid:
    def test_grid_covers_all_architectures(self):
        grid = table2_grid()
        by_pooling = {}
        for setting in grid:
            by_pooling.setdefault(setting.pooling, []).append(setting)
        assert set(by_pooling) == {
            POOLING_ADAPTIVE,
            POOLING_SORT_CONV1D,
            POOLING_SORT_WEIGHTED,
        }

    def test_architecture_counts_match_structure(self):
        """2 ratios x sizes x arch-specific x 2 dropout x 2 batch x 2 L2."""
        grid = table2_grid()
        counts = {}
        for setting in grid:
            counts[setting.pooling] = counts.get(setting.pooling, 0) + 1
        assert counts[POOLING_ADAPTIVE] == 2 * 2 * 2 * 8       # 64
        assert counts[POOLING_SORT_CONV1D] == 2 * 3 * 1 * 2 * 8  # 96
        assert counts[POOLING_SORT_WEIGHTED] == 2 * 3 * 8      # 48
        assert len(grid) == 208  # the paper's total

    def test_footnote_constraints(self):
        grid = table2_grid()
        for setting in grid:
            if setting.pooling == POOLING_ADAPTIVE:
                # (32,32,32,1) is sort-pooling-only (footnote 1).
                assert setting.graph_conv_sizes != (32, 32, 32, 1)
                assert setting.conv2d_channels in (16, 32)
                assert setting.conv1d_channels is None
            if setting.pooling == POOLING_SORT_CONV1D:
                assert setting.conv1d_channels == (16, 32)
                assert setting.conv1d_kernel in (5, 7)
                assert setting.conv2d_channels is None
            if setting.pooling == POOLING_SORT_WEIGHTED:
                assert setting.conv1d_channels is None
                assert setting.conv2d_channels is None

    def test_describe_is_informative(self):
        setting = table2_grid()[0]
        text = setting.describe()
        assert "pool=" in text and "batch=" in text


class TestAmpGrid:
    def test_ratio_mapping(self):
        assert amp_grid_from_ratio(0.2) == (2, 2)
        assert amp_grid_from_ratio(0.3) == (3, 3)
        assert amp_grid_from_ratio(0.64) == (6, 6)

    def test_floor_at_two(self):
        assert amp_grid_from_ratio(0.01) == (2, 2)


class TestSettingToModelConfig:
    def test_sort_pooling_k_resolved_from_sizes(self):
        setting = HyperparameterSetting(
            pooling=POOLING_SORT_WEIGHTED,
            pooling_ratio=0.64,
            graph_conv_sizes=(8, 8),
        )
        config = setting_to_model_config(
            setting, num_attributes=11, num_classes=3,
            graph_sizes=list(range(1, 101)),
        )
        assert config.sort_k == 64
        assert config.pooling == POOLING_SORT_WEIGHTED

    def test_adaptive_grid_resolved_from_ratio(self):
        setting = HyperparameterSetting(
            pooling=POOLING_ADAPTIVE,
            pooling_ratio=0.2,
            graph_conv_sizes=(8, 8),
            conv2d_channels=16,
        )
        config = setting_to_model_config(
            setting, num_attributes=11, num_classes=3, graph_sizes=[5, 10]
        )
        assert config.amp_grid == (2, 2)
        assert config.conv2d_channels == 16


class TestFullGridConvertibility:
    def test_every_table2_setting_builds_a_model_config(self):
        """All 208 grid points must resolve into valid ModelConfigs."""
        sizes = [5, 10, 20, 40, 80]
        for setting in table2_grid():
            config = setting_to_model_config(
                setting, num_attributes=11, num_classes=9, graph_sizes=sizes
            )
            assert config.num_classes == 9
            if setting.pooling == POOLING_ADAPTIVE:
                assert config.amp_grid[0] >= 2
            else:
                assert config.sort_k >= 2

    def test_every_setting_builds_a_model(self):
        """Spot-check actual model construction across the grid."""
        from repro.core.dgcnn import build_model

        sizes = [5, 10, 20]
        for setting in table2_grid()[::25]:  # sampled: construction is slow
            config = setting_to_model_config(
                setting, num_attributes=11, num_classes=4,
                graph_sizes=sizes, hidden_size=8,
            )
            model = build_model(config)
            assert model.num_parameters() > 0


class TestGridSearch:
    def make_dataset(self, rng, n_per_class=6):
        acfgs = []
        for label in (0, 1):
            for i in range(n_per_class):
                n = int(rng.integers(3, 7))
                adjacency = (rng.random((n, n)) < 0.3).astype(float)
                attributes = rng.standard_normal((n, 11)) + 2.0 * label
                acfgs.append(
                    ACFG(adjacency=adjacency, attributes=attributes,
                         label=label, name=f"{label}_{i}")
                )
        return MalwareDataset(acfgs=acfgs, family_names=["a", "b"])

    def test_search_ranks_settings(self, rng):
        dataset = self.make_dataset(rng)
        settings = [
            HyperparameterSetting(
                pooling=POOLING_SORT_WEIGHTED, pooling_ratio=0.64,
                graph_conv_sizes=(6, 6), dropout=0.0, batch_size=6,
            ),
            HyperparameterSetting(
                pooling=POOLING_ADAPTIVE, pooling_ratio=0.2,
                graph_conv_sizes=(6, 6), conv2d_channels=4,
                dropout=0.0, batch_size=6,
            ),
        ]
        progress_calls = []
        search = GridSearch(
            dataset, epochs=2, n_splits=2, hidden_size=8,
            progress=lambda i, n, s, score: progress_calls.append((i, n)),
        )
        result = search.run(settings)
        assert len(result.entries) == 2
        assert result.best in result.entries
        ranking = result.ranking()
        assert ranking[0].score <= ranking[1].score
        assert progress_calls == [(1, 2), (2, 2)]

    def test_dataset_too_small_rejected(self, rng):
        dataset = self.make_dataset(rng, n_per_class=1)
        with pytest.raises(ConfigurationError):
            GridSearch(dataset, epochs=1, n_splits=5)
