"""Tests for the metrics module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TrainingError
from repro.train.metrics import (
    average_reports,
    confusion_matrix,
    evaluate_predictions,
    log_loss,
    precision_recall_f1,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        y = np.array([0, 1, 2, 1])
        cm = confusion_matrix(y, y, 3)
        np.testing.assert_array_equal(cm, np.diag([1, 2, 1]))

    def test_off_diagonal_placement(self):
        cm = confusion_matrix(np.array([0]), np.array([2]), 3)
        assert cm[0, 2] == 1
        assert cm.sum() == 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            confusion_matrix(np.array([0, 1]), np.array([0]), 2)


class TestPrecisionRecallF1:
    def test_known_values(self):
        # Class 0: tp=2, fp=1, fn=1 -> P=2/3, R=2/3, F1=2/3.
        cm = np.array([[2, 1], [1, 6]])
        scores = precision_recall_f1(cm)
        assert scores[0].precision == pytest.approx(2 / 3)
        assert scores[0].recall == pytest.approx(2 / 3)
        assert scores[0].f1 == pytest.approx(2 / 3)
        assert scores[0].support == 3

    def test_absent_class_scores_zero(self):
        cm = np.array([[5, 0], [0, 0]])
        scores = precision_recall_f1(cm)
        assert scores[1].precision == 0.0  # repro: allow[float-equality] — exact by construction
        assert scores[1].recall == 0.0  # repro: allow[float-equality] — exact by construction
        assert scores[1].f1 == 0.0  # repro: allow[float-equality] — exact by construction

    @given(
        n=st.integers(5, 60),
        c=st.integers(2, 6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_scores_bounded(self, n, c, seed):
        """Property: all scores live in [0, 1]."""
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, c, n)
        y_pred = rng.integers(0, c, n)
        for s in precision_recall_f1(confusion_matrix(y_true, y_pred, c)):
            assert 0.0 <= s.precision <= 1.0
            assert 0.0 <= s.recall <= 1.0
            assert 0.0 <= s.f1 <= 1.0
            low = min(s.precision, s.recall)
            high = max(s.precision, s.recall)
            assert low - 1e-12 <= s.f1 <= high + 1e-12


class TestLogLoss:
    def test_perfect_confidence(self):
        proba = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert log_loss(np.array([0, 1]), proba) == pytest.approx(0.0, abs=1e-10)

    def test_uniform(self):
        proba = np.full((3, 4), 0.25)
        assert log_loss(np.array([0, 1, 2]), proba) == pytest.approx(np.log(4))

    def test_clipping_avoids_infinity(self):
        proba = np.array([[0.0, 1.0]])
        assert np.isfinite(log_loss(np.array([0]), proba))

    def test_shape_validated(self):
        with pytest.raises(TrainingError):
            log_loss(np.array([0, 1]), np.ones((1, 2)))


class TestEvaluatePredictions:
    def test_full_report(self):
        proba = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        report = evaluate_predictions(
            np.array([0, 1, 1]), proba, 2, family_names=["a", "b"]
        )
        assert report.accuracy == pytest.approx(2 / 3)
        assert report.family_names == ["a", "b"]
        assert report.confusion.sum() == 3

    def test_macro_and_weighted_f1(self):
        proba = np.eye(3)[np.array([0, 1, 2, 0])]
        report = evaluate_predictions(np.array([0, 1, 2, 0]), proba, 3)
        assert report.macro_f1 == pytest.approx(1.0)
        assert report.weighted_f1 == pytest.approx(1.0)

    def test_format_table_contains_families(self):
        proba = np.eye(2)[np.array([0, 1])]
        report = evaluate_predictions(
            np.array([0, 1]), proba, 2, family_names=["Ramnit", "Gatak"]
        )
        table = report.format_table()
        assert "Ramnit" in table and "Gatak" in table
        assert "accuracy" in table

    def test_scores_by_family_requires_names(self):
        proba = np.eye(2)[np.array([0, 1])]
        report = evaluate_predictions(np.array([0, 1]), proba, 2)
        with pytest.raises(TrainingError):
            report.scores_by_family()


class TestAverageReports:
    def test_averaging(self):
        proba_a = np.eye(2)[np.array([0, 1])]
        proba_b = np.array([[0.4, 0.6], [0.4, 0.6]])  # both predicted class 1
        a = evaluate_predictions(np.array([0, 1]), proba_a, 2)
        b = evaluate_predictions(np.array([0, 1]), proba_b, 2)
        merged = average_reports([a, b])
        assert merged.accuracy == pytest.approx((1.0 + 0.5) / 2)
        assert merged.confusion.sum() == 4
        assert merged.per_class[0].support == 2

    def test_empty_rejected(self):
        with pytest.raises(TrainingError):
            average_reports([])
