"""Tests for the training loop."""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig, build_model
from repro.exceptions import TrainingError
from repro.features.acfg import ACFG
from repro.features.scaling import AttributeScaler
from repro.train.trainer import Trainer, TrainingConfig


def toy_dataset(rng, n_per_class=8):
    """Two families separable by attribute shift and density."""
    acfgs = []
    for label in (0, 1):
        for _ in range(n_per_class):
            n = int(rng.integers(4, 9))
            adjacency = (rng.random((n, n)) < (0.15 + 0.4 * label)).astype(float)
            np.fill_diagonal(adjacency, 0.0)
            attributes = rng.standard_normal((n, 11)) + 2.5 * label
            acfgs.append(
                ACFG(adjacency=adjacency, attributes=attributes, label=label)
            )
    return acfgs


def small_model(seed=0):
    return build_model(
        ModelConfig(
            num_attributes=11,
            num_classes=2,
            pooling="sort_weighted",
            graph_conv_sizes=(8, 8),
            sort_k=4,
            hidden_size=8,
            dropout=0.0,
            seed=seed,
        )
    )


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            TrainingConfig(epochs=0)
        with pytest.raises(TrainingError):
            TrainingConfig(batch_size=0)


class TestTrainer:
    def test_empty_dataset_rejected(self):
        with pytest.raises(TrainingError):
            Trainer(TrainingConfig(epochs=1)).train(small_model(), [])

    def test_unlabelled_rejected(self, rng):
        acfgs = toy_dataset(rng)
        acfgs[0].label = None
        with pytest.raises(TrainingError):
            Trainer(TrainingConfig(epochs=1)).train(small_model(), acfgs)

    def test_loss_decreases_over_training(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        history = Trainer(
            TrainingConfig(epochs=12, batch_size=8, learning_rate=5e-3)
        ).train(small_model(), acfgs)
        assert history.num_epochs == 12
        assert history.train_losses[-1] < history.train_losses[0]

    def test_validation_tracked_and_best_recorded(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        train, val = acfgs[:10], acfgs[10:]
        history = Trainer(TrainingConfig(epochs=5, batch_size=4)).train(
            small_model(), train, val
        )
        assert len(history.validation_losses) == 5
        assert 0 <= history.best_epoch < 5
        assert history.best_validation_loss == min(history.validation_losses)

    def test_restore_best_loads_best_epoch_weights(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        train, val = acfgs[:10], acfgs[10:]
        model = small_model()
        trainer = Trainer(TrainingConfig(epochs=8, batch_size=4, learning_rate=1e-2))
        history = trainer.train(model, train, val, restore_best=True)
        final_loss = Trainer.evaluate_loss(model, val)
        assert final_loss == pytest.approx(history.best_validation_loss, rel=1e-6)

    def test_timing_recorded(self, rng):
        acfgs = toy_dataset(rng, n_per_class=3)
        history = Trainer(TrainingConfig(epochs=1, batch_size=2)).train(
            small_model(), acfgs
        )
        assert history.train_seconds_per_instance > 0

    def test_deterministic_given_seeds(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng, n_per_class=4))
        losses = []
        for _ in range(2):
            history = Trainer(
                TrainingConfig(epochs=3, batch_size=4, seed=5)
            ).train(small_model(seed=3), acfgs)
            losses.append(history.train_losses)
        np.testing.assert_allclose(losses[0], losses[1])


class TestEvaluation:
    def test_predict_proba_batched_consistently(self, rng):
        acfgs = toy_dataset(rng, n_per_class=5)
        model = small_model()
        all_at_once = Trainer.predict_proba(model, acfgs, batch_size=64)
        chunked = Trainer.predict_proba(model, acfgs, batch_size=3)
        np.testing.assert_allclose(all_at_once, chunked, atol=1e-12)

    def test_evaluate_report_families(self, rng):
        acfgs = toy_dataset(rng, n_per_class=4)
        report = Trainer.evaluate(small_model(), acfgs, family_names=["a", "b"])
        assert report.family_names == ["a", "b"]
        assert report.confusion.sum() == len(acfgs)
