"""Tests for k-fold cross validation."""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig, build_model
from repro.datasets.loader import MalwareDataset
from repro.features.acfg import ACFG
from repro.train.cross_validation import cross_validate
from repro.train.trainer import TrainingConfig


def make_dataset(rng, n_per_class=10, num_classes=2):
    acfgs = []
    for label in range(num_classes):
        for i in range(n_per_class):
            n = int(rng.integers(3, 8))
            adjacency = (rng.random((n, n)) < 0.3).astype(float)
            np.fill_diagonal(adjacency, 0.0)
            attributes = rng.standard_normal((n, 11)) + 2.0 * label
            acfgs.append(
                ACFG(adjacency=adjacency, attributes=attributes,
                     label=label, name=f"{label}_{i}")
            )
    return MalwareDataset(
        acfgs=acfgs, family_names=[f"f{c}" for c in range(num_classes)]
    )


def factory(fold):
    return build_model(
        ModelConfig(
            num_attributes=11,
            num_classes=2,
            pooling="sort_weighted",
            graph_conv_sizes=(6, 6),
            sort_k=3,
            hidden_size=8,
            dropout=0.0,
            seed=fold,
        )
    )


class TestCrossValidate:
    def test_three_fold_structure(self, rng):
        dataset = make_dataset(rng, n_per_class=6)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=2, batch_size=6),
            n_splits=3,
        )
        assert len(result.fold_histories) == 3
        assert len(result.fold_reports) == 3
        assert result.epoch_validation_losses.shape == (2,)
        # Averaged report covers every sample exactly once.
        assert result.averaged_report.confusion.sum() == len(dataset)

    def test_score_is_min_epoch_average(self, rng):
        dataset = make_dataset(rng, n_per_class=6)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=3, batch_size=6),
            n_splits=3,
        )
        manual = np.mean(
            [h.validation_losses for h in result.fold_histories], axis=0
        )
        assert result.score == pytest.approx(manual.min())

    def test_learns_separable_data(self, rng):
        dataset = make_dataset(rng, n_per_class=9)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=10, batch_size=6, learning_rate=5e-3),
            n_splits=3,
        )
        assert result.accuracy > 0.8

    def test_scaling_can_be_disabled(self, rng):
        dataset = make_dataset(rng, n_per_class=4)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=1, batch_size=4),
            n_splits=2,
            scale_attributes=False,
        )
        assert len(result.fold_reports) == 2
