"""Tests for k-fold cross validation."""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig, build_model
from repro.datasets.loader import MalwareDataset
from repro.features.acfg import ACFG
from repro.train.cross_validation import cross_validate
from repro.train.trainer import TrainingConfig


def make_dataset(rng, n_per_class=10, num_classes=2):
    acfgs = []
    for label in range(num_classes):
        for i in range(n_per_class):
            n = int(rng.integers(3, 8))
            adjacency = (rng.random((n, n)) < 0.3).astype(float)
            np.fill_diagonal(adjacency, 0.0)
            attributes = rng.standard_normal((n, 11)) + 2.0 * label
            acfgs.append(
                ACFG(adjacency=adjacency, attributes=attributes,
                     label=label, name=f"{label}_{i}")
            )
    return MalwareDataset(
        acfgs=acfgs, family_names=[f"f{c}" for c in range(num_classes)]
    )


def factory(fold):
    return build_model(
        ModelConfig(
            num_attributes=11,
            num_classes=2,
            pooling="sort_weighted",
            graph_conv_sizes=(6, 6),
            sort_k=3,
            hidden_size=8,
            dropout=0.0,
            seed=fold,
        )
    )


class TestCrossValidate:
    def test_three_fold_structure(self, rng):
        dataset = make_dataset(rng, n_per_class=6)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=2, batch_size=6),
            n_splits=3,
        )
        assert len(result.fold_histories) == 3
        assert len(result.fold_reports) == 3
        assert result.epoch_validation_losses.shape == (2,)
        # Averaged report covers every sample exactly once.
        assert result.averaged_report.confusion.sum() == len(dataset)

    def test_score_is_min_epoch_average(self, rng):
        dataset = make_dataset(rng, n_per_class=6)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=3, batch_size=6),
            n_splits=3,
        )
        manual = np.mean(
            [h.validation_losses for h in result.fold_histories], axis=0
        )
        assert result.score == pytest.approx(manual.min())

    def test_learns_separable_data(self, rng):
        dataset = make_dataset(rng, n_per_class=9)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=10, batch_size=6, learning_rate=5e-3),
            n_splits=3,
        )
        assert result.accuracy > 0.8

    def test_scaling_can_be_disabled(self, rng):
        dataset = make_dataset(rng, n_per_class=4)
        result = cross_validate(
            factory,
            dataset,
            TrainingConfig(epochs=1, batch_size=4),
            n_splits=2,
            scale_attributes=False,
        )
        assert len(result.fold_reports) == 2


class TestFoldWorkUnits:
    """The pickle-able fold units behind the parallel sweep engine."""

    def test_fold_specs_are_pickleable(self, rng):
        import pickle

        from repro.train.cross_validation import make_fold_specs

        dataset = make_dataset(rng, n_per_class=6)
        config = ModelConfig(
            num_attributes=11, num_classes=2, pooling="sort_weighted",
            graph_conv_sizes=(6, 6), sort_k=3, hidden_size=8, seed=0,
        )
        specs = make_fold_specs(
            dataset, TrainingConfig(epochs=2, batch_size=6),
            model_config=config, n_splits=3,
        )
        assert len(specs) == 3
        restored = pickle.loads(pickle.dumps(specs))
        assert [s.fold_index for s in restored] == [0, 1, 2]
        assert restored[0].model_config == config
        # Specs partition the dataset per fold.
        for spec in restored:
            merged = sorted(spec.train_indices + spec.val_indices)
            assert merged == list(range(len(dataset)))

    def test_config_path_matches_factory_path_exactly(self, rng):
        """cross_validate_config == cross_validate with the equivalent
        factory closure (the pre-refactor GridSearch idiom)."""
        import dataclasses as dc

        from repro.train.cross_validation import (
            MODEL_SEED_STRIDE,
            cross_validate_config,
        )

        dataset = make_dataset(rng, n_per_class=6)
        config = ModelConfig(
            num_attributes=11, num_classes=2, pooling="sort_weighted",
            graph_conv_sizes=(6, 6), sort_k=3, hidden_size=8,
            dropout=0.0, seed=7,
        )
        training = TrainingConfig(epochs=2, batch_size=6, seed=7)

        def closure_factory(fold):
            return build_model(
                dc.replace(config, seed=config.seed + MODEL_SEED_STRIDE * fold)
            )

        via_factory = cross_validate(
            closure_factory, dataset, training, n_splits=3
        )
        via_config = cross_validate_config(config, dataset, training, n_splits=3)
        assert np.array_equal(
            via_factory.epoch_validation_losses,
            via_config.epoch_validation_losses,
        )
        for a, b in zip(via_factory.fold_histories, via_config.fold_histories):
            assert a.train_losses == b.train_losses
            assert a.validation_losses == b.validation_losses

    def test_run_fold_result_roundtrips_through_json(self, rng):
        """Journaled folds reproduce in-memory results bit for bit."""
        import json

        from repro.train.cross_validation import make_fold_specs, run_fold
        from repro.train.metrics import ClassificationReport
        from repro.train.trainer import TrainingHistory

        dataset = make_dataset(rng, n_per_class=4)
        specs = make_fold_specs(
            dataset, TrainingConfig(epochs=2, batch_size=4), n_splits=2
        )
        result = run_fold(specs[0], dataset, model_factory=factory)
        history = TrainingHistory.from_dict(
            json.loads(json.dumps(result.history.to_dict()))
        )
        assert history == result.history
        report = ClassificationReport.from_dict(
            json.loads(json.dumps(result.report.to_dict()))
        )
        assert report.accuracy == result.report.accuracy
        assert report.log_loss == result.report.log_loss
        assert np.array_equal(report.confusion, result.report.confusion)
