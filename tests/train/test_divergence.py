"""Tests for the training-divergence guards (NaN/Inf loss or gradients).

A diverged run inside a sweep must become a structured failure — never a
NaN score silently ranked against finite ones, and never a retry (the
divergence is a deterministic property of setting x fold x seed).
"""

import numpy as np
import pytest

import repro.train.sweep as sweep_module
from repro.core.dgcnn import ModelConfig, build_model
from repro.datasets import generate_mskcfg_dataset
from repro.exceptions import TrainingDivergedError
from repro.features.acfg import ACFG
from repro.nn.layers import Module, Parameter
from repro.nn.tensor import Tensor
from repro.train.hyperparameter import GridSearch, HyperparameterSetting
from repro.train.sweep import SweepExecutor
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory


class ScriptedModel(Module):
    """Emits uniform log-probs; poisons one scheduled forward call.

    ``mode="nan-loss"`` returns NaN log-probs on call ``trip_call`` (the
    loss check must fire before ``backward``); ``mode="nan-grad"``
    returns finite log-probs whose backward writes a NaN gradient into
    the parameter (the gradient check must fire after ``backward``).
    """

    def __init__(self, mode=None, trip_call=-1):
        super().__init__()
        self.weight = Parameter(np.zeros(1))
        self.mode = mode
        self.trip_call = trip_call
        self.calls = 0

    def forward(self, batch):
        call = self.calls
        self.calls += 1
        data = np.full((len(batch), 2), np.log(0.5))
        grad = np.zeros(1)
        if call == self.trip_call:
            if self.mode == "nan-loss":
                data = np.full((len(batch), 2), np.nan)
            else:
                grad = np.full(1, np.nan)
        return Tensor._make(data, (self.weight,), lambda g: [grad])


def tiny_acfgs(count=8):
    adjacency = np.zeros((2, 2))
    adjacency[0, 1] = 1.0
    attributes = np.ones((2, 11))
    return [
        ACFG(adjacency=adjacency, attributes=attributes, label=i % 2)
        for i in range(count)
    ]


def config(**overrides):
    kwargs = dict(epochs=3, batch_size=4, seed=0)
    kwargs.update(overrides)
    return TrainingConfig(**kwargs)


class TestHaltOnDivergence:
    def test_nan_loss_raises_with_location(self):
        # 8 samples / batch_size 4 = 2 batches per epoch; forward call 3
        # is epoch 1, batch 1.
        model = ScriptedModel(mode="nan-loss", trip_call=3)
        with pytest.raises(TrainingDivergedError) as excinfo:
            Trainer(config()).train(model, tiny_acfgs())
        assert excinfo.value.epoch == 1
        assert excinfo.value.batch == 1
        assert "loss" in str(excinfo.value)

    def test_nan_gradient_raises(self):
        model = ScriptedModel(mode="nan-grad", trip_call=0)
        with pytest.raises(TrainingDivergedError) as excinfo:
            Trainer(config()).train(model, tiny_acfgs())
        assert excinfo.value.epoch == 0
        assert excinfo.value.batch == 0
        assert "gradients" in str(excinfo.value)

    def test_poisoned_real_model_raises(self):
        # Integration: NaN parameters in an actual DGCNN surface as a
        # structured divergence, not as a NaN ranked score.
        model = build_model(
            ModelConfig(
                num_attributes=11, num_classes=2, pooling="sort_weighted",
                graph_conv_sizes=(6, 6), sort_k=2, hidden_size=6,
                dropout=0.0, seed=0,
            )
        )
        model.parameters()[0].data[...] = np.nan
        with pytest.raises(TrainingDivergedError):
            Trainer(config(epochs=1)).train(model, tiny_acfgs())

    def test_clean_run_not_flagged(self):
        history = Trainer(config()).train(ScriptedModel(), tiny_acfgs())
        assert not history.diverged
        assert history.num_epochs == 3


class TestSoftStop:
    def test_history_marks_divergence_and_truncates(self):
        model = ScriptedModel(mode="nan-loss", trip_call=2)
        history = Trainer(
            config(halt_on_divergence=False)
        ).train(model, tiny_acfgs())
        assert history.diverged
        assert history.diverged_epoch == 1
        assert history.diverged_batch == 0
        # Epoch 0 completed; the partial diverged epoch is dropped.
        assert history.num_epochs == 1

    def test_partial_epoch_never_recorded(self):
        model = ScriptedModel(mode="nan-grad", trip_call=0)
        history = Trainer(
            config(halt_on_divergence=False)
        ).train(model, tiny_acfgs())
        assert history.num_epochs == 0
        assert history.diverged_epoch == 0

    def test_history_round_trips_through_journal_dict(self):
        model = ScriptedModel(mode="nan-loss", trip_call=2)
        history = Trainer(
            config(halt_on_divergence=False)
        ).train(model, tiny_acfgs())
        clone = TrainingHistory.from_dict(history.to_dict())
        assert clone.diverged
        assert clone.diverged_epoch == history.diverged_epoch

    def test_legacy_journal_payload_still_loads(self):
        # Pre-divergence sweep journals lack the new fields.
        payload = TrainingHistory().to_dict()
        payload.pop("diverged_epoch")
        payload.pop("diverged_batch")
        history = TrainingHistory.from_dict(payload)
        assert not history.diverged


class TestSweepRecordsDivergence:
    def test_diverged_fold_fails_once_without_retry(self, monkeypatch):
        def diverging_run_fold(spec, dataset, model_factory=None):
            raise TrainingDivergedError(
                "training loss is not finite", epoch=0, batch=1, loss=float("nan")
            )

        monkeypatch.setattr(sweep_module, "run_fold", diverging_run_fold)
        dataset = generate_mskcfg_dataset(total=30, seed=7, minimum_per_family=4)
        search = GridSearch(dataset, epochs=2, n_splits=2, hidden_size=8, seed=0)
        settings = [
            HyperparameterSetting(
                pooling="sort_weighted", pooling_ratio=0.2,
                graph_conv_sizes=(6, 6), dropout=0.0, batch_size=8,
            )
        ]
        report = SweepExecutor(search, n_jobs=1, max_retries=2).run(settings)
        assert len(report.failures) == search.n_splits
        for failure in report.failures:
            assert failure.attempts == 1  # deterministic: never retried
            assert "TrainingDivergedError" in failure.error
