"""Tests for minibatch iteration and the memoizing collate layer."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.features.acfg import ACFG
from repro.train.batching import BatchCollator, collate_graphs, iterate_minibatches


def make_acfgs(n):
    return [
        ACFG(
            adjacency=np.zeros((1, 1)),
            attributes=np.array([[float(i)]]),
            label=0,
            name=f"s{i}",
        )
        for i in range(n)
    ]


class TestMinibatches:
    def test_covers_all_samples_once(self):
        acfgs = make_acfgs(23)
        seen = []
        for batch in iterate_minibatches(acfgs, 5, rng=np.random.default_rng(0)):
            seen.extend(a.name for a in batch)
        assert sorted(seen) == sorted(a.name for a in acfgs)

    def test_batch_sizes(self):
        batches = list(
            iterate_minibatches(make_acfgs(23), 5, rng=np.random.default_rng(0))
        )
        assert [len(b) for b in batches] == [5, 5, 5, 5, 3]

    def test_no_shuffle_preserves_order(self):
        batches = list(iterate_minibatches(make_acfgs(6), 2, shuffle=False))
        assert [a.name for b in batches for a in b] == [f"s{i}" for i in range(6)]

    def test_shuffle_deterministic_for_seed(self):
        acfgs = make_acfgs(10)
        a = [x.name for b in iterate_minibatches(acfgs, 3, rng=np.random.default_rng(1)) for x in b]
        b = [x.name for b2 in iterate_minibatches(acfgs, 3, rng=np.random.default_rng(1)) for x in b2]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            list(iterate_minibatches(make_acfgs(3), 0))


class TestCollateGraphs:
    def test_builds_graph_batch(self):
        batch = collate_graphs(make_acfgs(3))
        assert batch.num_graphs == 3
        assert batch.normalized is True

    def test_unnormalized(self):
        batch = collate_graphs(make_acfgs(2), normalize_propagation=False)
        assert batch.normalized is False


class TestBatchCollator:
    def test_cache_hit_returns_same_object(self):
        acfgs = make_acfgs(4)
        collator = BatchCollator()
        first = collator(acfgs)
        assert collator(acfgs) is first
        assert (collator.hits, collator.misses) == (1, 1)

    def test_different_order_is_different_batch(self):
        acfgs = make_acfgs(3)
        collator = BatchCollator()
        forward = collator(acfgs)
        backward = collator(list(reversed(acfgs)))
        assert backward is not forward
        assert collator.misses == 2

    def test_eviction_bound(self):
        acfgs = make_acfgs(6)
        collator = BatchCollator(max_entries=2)
        collator([acfgs[0]])
        collator([acfgs[1]])
        collator([acfgs[2]])  # evicts the [acfgs[0]] entry (FIFO)
        assert len(collator) == 2
        collator([acfgs[0]])
        assert collator.hits == 0 and collator.misses == 4

    def test_zero_entries_disables_caching(self):
        acfgs = make_acfgs(2)
        collator = BatchCollator(max_entries=0)
        first = collator(acfgs)
        second = collator(acfgs)
        assert second is not first
        assert len(collator) == 0

    def test_negative_entries_rejected(self):
        with pytest.raises(TrainingError):
            BatchCollator(max_entries=-1)

    def test_clear(self):
        collator = BatchCollator()
        collator(make_acfgs(2))
        collator.clear()
        assert len(collator) == 0
