"""Tests for minibatch iteration."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.features.acfg import ACFG
from repro.train.batching import iterate_minibatches


def make_acfgs(n):
    return [
        ACFG(
            adjacency=np.zeros((1, 1)),
            attributes=np.array([[float(i)]]),
            label=0,
            name=f"s{i}",
        )
        for i in range(n)
    ]


class TestMinibatches:
    def test_covers_all_samples_once(self):
        acfgs = make_acfgs(23)
        seen = []
        for batch in iterate_minibatches(acfgs, 5, rng=np.random.default_rng(0)):
            seen.extend(a.name for a in batch)
        assert sorted(seen) == sorted(a.name for a in acfgs)

    def test_batch_sizes(self):
        batches = list(
            iterate_minibatches(make_acfgs(23), 5, rng=np.random.default_rng(0))
        )
        assert [len(b) for b in batches] == [5, 5, 5, 5, 3]

    def test_no_shuffle_preserves_order(self):
        batches = list(iterate_minibatches(make_acfgs(6), 2, shuffle=False))
        assert [a.name for b in batches for a in b] == [f"s{i}" for i in range(6)]

    def test_shuffle_deterministic_for_seed(self):
        acfgs = make_acfgs(10)
        a = [x.name for b in iterate_minibatches(acfgs, 3, rng=np.random.default_rng(1)) for x in b]
        b = [x.name for b2 in iterate_minibatches(acfgs, 3, rng=np.random.default_rng(1)) for x in b2]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            list(iterate_minibatches(make_acfgs(3), 0))
