"""Tests for minibatch iteration and the memoizing collate layer."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.features.acfg import ACFG
from repro.train.batching import BatchCollator, collate_graphs, iterate_minibatches


def make_acfgs(n):
    return [
        ACFG(
            adjacency=np.zeros((1, 1)),
            attributes=np.array([[float(i)]]),
            label=0,
            name=f"s{i}",
        )
        for i in range(n)
    ]


class TestMinibatches:
    def test_covers_all_samples_once(self):
        acfgs = make_acfgs(23)
        seen = []
        for batch in iterate_minibatches(acfgs, 5, rng=np.random.default_rng(0)):
            seen.extend(a.name for a in batch)
        assert sorted(seen) == sorted(a.name for a in acfgs)

    def test_batch_sizes(self):
        batches = list(
            iterate_minibatches(make_acfgs(23), 5, rng=np.random.default_rng(0))
        )
        assert [len(b) for b in batches] == [5, 5, 5, 5, 3]

    def test_no_shuffle_preserves_order(self):
        batches = list(iterate_minibatches(make_acfgs(6), 2, shuffle=False))
        assert [a.name for b in batches for a in b] == [f"s{i}" for i in range(6)]

    def test_shuffle_deterministic_for_seed(self):
        acfgs = make_acfgs(10)
        a = [x.name for b in iterate_minibatches(acfgs, 3, rng=np.random.default_rng(1)) for x in b]
        b = [x.name for b2 in iterate_minibatches(acfgs, 3, rng=np.random.default_rng(1)) for x in b2]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(TrainingError):
            list(iterate_minibatches(make_acfgs(3), 0))


class TestCollateGraphs:
    def test_builds_graph_batch(self):
        batch = collate_graphs(make_acfgs(3))
        assert batch.num_graphs == 3
        assert batch.normalized is True

    def test_unnormalized(self):
        batch = collate_graphs(make_acfgs(2), normalize_propagation=False)
        assert batch.normalized is False


class TestBatchCollator:
    def test_cache_hit_returns_same_object(self):
        acfgs = make_acfgs(4)
        collator = BatchCollator()
        first = collator(acfgs)
        assert collator(acfgs) is first
        assert (collator.hits, collator.misses) == (1, 1)

    def test_different_order_is_different_batch(self):
        acfgs = make_acfgs(3)
        collator = BatchCollator()
        forward = collator(acfgs)
        backward = collator(list(reversed(acfgs)))
        assert backward is not forward
        assert collator.misses == 2

    def test_eviction_bound(self):
        acfgs = make_acfgs(6)
        collator = BatchCollator(max_entries=2)
        collator([acfgs[0]])
        collator([acfgs[1]])
        collator([acfgs[2]])  # evicts the [acfgs[0]] entry (FIFO)
        assert len(collator) == 2
        collator([acfgs[0]])
        assert collator.hits == 0 and collator.misses == 4

    def test_zero_entries_disables_caching(self):
        acfgs = make_acfgs(2)
        collator = BatchCollator(max_entries=0)
        first = collator(acfgs)
        second = collator(acfgs)
        assert second is not first
        assert len(collator) == 0

    def test_negative_entries_rejected(self):
        with pytest.raises(TrainingError):
            BatchCollator(max_entries=-1)

    def test_clear(self):
        collator = BatchCollator()
        collator(make_acfgs(2))
        collator.clear()
        assert len(collator) == 0


class TestCollatorFifoSemantics:
    def test_hit_does_not_refresh_fifo_position(self):
        """The bound is FIFO by insertion, not LRU: a cache hit does not
        rescue an entry from eviction."""
        acfgs = make_acfgs(4)
        collator = BatchCollator(max_entries=2)
        collator([acfgs[0]])
        collator([acfgs[1]])
        collator([acfgs[0]])          # hit; FIFO position unchanged
        collator([acfgs[2]])          # evicts [acfgs[0]] despite the hit
        assert (collator.hits, collator.misses) == (1, 3)
        collator([acfgs[1]])          # survived: inserted after acfgs[0]
        assert collator.hits == 2
        collator([acfgs[0]])          # evicted: re-collates
        assert collator.misses == 4

    def test_max_entries_zero_counts_misses_only(self):
        acfgs = make_acfgs(2)
        collator = BatchCollator(max_entries=0)
        collator(acfgs)
        collator(acfgs)
        assert (collator.hits, collator.misses) == (0, 2)
        assert len(collator) == 0


class TestTrainerValidationMemoization:
    """Locks in the PR 1 win: the per-epoch validation pass collates once."""

    def make_labelled_acfgs(self, rng, count, label):
        acfgs = []
        for i in range(count):
            n = int(rng.integers(4, 8))
            adjacency = (rng.random((n, n)) < 0.4).astype(float)
            np.fill_diagonal(adjacency, 0.0)
            attributes = rng.standard_normal((n, 11)) + 2.0 * label
            acfgs.append(
                ACFG(adjacency=adjacency, attributes=attributes,
                     label=label, name=f"m{label}_{i}")
            )
        return acfgs

    def test_validation_chunks_hit_cache_after_first_epoch(self):
        from repro.core.dgcnn import ModelConfig, build_model
        from repro.train.trainer import Trainer, TrainingConfig

        rng = np.random.default_rng(5)
        train = self.make_labelled_acfgs(rng, 6, 0) + self.make_labelled_acfgs(rng, 6, 1)
        val = self.make_labelled_acfgs(rng, 3, 0) + self.make_labelled_acfgs(rng, 3, 1)
        model = build_model(
            ModelConfig(
                num_attributes=11, num_classes=2, pooling="sort_weighted",
                graph_conv_sizes=(6, 6), sort_k=3, hidden_size=8,
                dropout=0.0, seed=0,
            )
        )
        epochs = 3
        trainer = Trainer(TrainingConfig(epochs=epochs, batch_size=4, seed=0))
        trainer.train(model, train, val)

        collator = trainer.last_collator
        assert collator is not None
        # The single fixed validation chunk misses on epoch 1 and hits on
        # every later epoch's validation pass.
        assert collator.hits >= epochs - 1

        # Post-training evaluation through the same collator reuses the
        # memoized chunk instead of re-collating (the cross_validate path).
        before = collator.hits
        Trainer.evaluate(model, val, family_names=["a", "b"], collator=collator)
        assert collator.hits == before + 1
