"""Tests for adversarial training (PGD-AT) in the Trainer."""

import numpy as np
import pytest

import repro.train.trainer as trainer_module
from repro.adv.attack import perturb_batch_scaled
from repro.exceptions import TrainingDivergedError, TrainingError
from repro.features.attributes import attribute_names
from repro.features.scaling import AttributeScaler
from repro.train.trainer import AdversarialConfig, Trainer, TrainingConfig

from tests.train.test_trainer import small_model, toy_dataset

ADVERSARIAL = AdversarialConfig(steps=2, epsilon=0.5, weight=0.5)


def adversarial_config(**overrides):
    settings = dict(
        epochs=3, batch_size=8, learning_rate=5e-3, seed=0,
        adversarial=ADVERSARIAL,
    )
    settings.update(overrides)
    return TrainingConfig(**settings)


class TestAdversarialConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            AdversarialConfig(steps=0)
        with pytest.raises(TrainingError):
            AdversarialConfig(epsilon=0.0)
        with pytest.raises(TrainingError):
            AdversarialConfig(weight=0.0)
        with pytest.raises(TrainingError):
            AdversarialConfig(weight=1.5)

    def test_resolved_step_size(self):
        assert AdversarialConfig(
            steps=5, epsilon=2.0
        ).resolved_step_size == pytest.approx(1.0)
        assert AdversarialConfig(step_size=0.1).resolved_step_size == pytest.approx(0.1)


class TestAdversarialTraining:
    def test_trains_and_forces_eager(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        trainer = Trainer(adversarial_config(compiled=True))
        history = trainer.train(small_model(), acfgs)
        assert history.num_epochs == 3
        assert all(np.isfinite(loss) for loss in history.train_losses)
        # The compiled tape has no input-gradient channel, so the
        # adversarial path must stay on the eager autograd.
        assert trainer.last_compiled is None

    def test_deterministic_under_fixed_seed(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        first = Trainer(adversarial_config()).train(small_model(), acfgs)
        second = Trainer(adversarial_config()).train(small_model(), acfgs)
        assert first.train_losses == second.train_losses

    def test_adversarial_mix_changes_training(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        clean = Trainer(
            adversarial_config(adversarial=None)
        ).train(small_model(), acfgs)
        defended = Trainer(adversarial_config()).train(small_model(), acfgs)
        assert clean.train_losses != defended.train_losses

    def test_divergent_inner_attack_halts(self, rng, monkeypatch):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        monkeypatch.setattr(
            trainer_module,
            "perturb_batch_scaled",
            lambda *args, **kwargs: ([], float("nan")),
        )
        with pytest.raises(TrainingDivergedError, match="inner-attack"):
            Trainer(adversarial_config()).train(small_model(), acfgs)

    def test_divergent_inner_attack_recorded_when_not_halting(
        self, rng, monkeypatch
    ):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))
        monkeypatch.setattr(
            trainer_module,
            "perturb_batch_scaled",
            lambda *args, **kwargs: ([], float("nan")),
        )
        history = Trainer(
            adversarial_config(halt_on_divergence=False)
        ).train(small_model(), acfgs)
        assert history.diverged
        assert history.diverged_epoch == 0


class TestPerturbBatchScaled:
    def test_ball_and_frozen_channels(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))[:6]
        labels = np.array([g.label for g in acfgs], dtype=np.int64)
        model = small_model()
        attacked, loss = perturb_batch_scaled(
            model, acfgs, labels, epsilon=0.5, steps=2, step_size=0.4,
            rng=np.random.default_rng(0),
        )
        assert np.isfinite(loss)
        offspring = attribute_names().index("offspring")
        for clean, adv in zip(acfgs, attacked):
            delta = np.abs(adv.attributes - clean.attributes)
            assert delta.max() <= 0.5 + 1e-9
            # offspring is structural and must never move.
            assert delta[:, offspring].max() == 0.0  # repro: allow[float-equality] — frozen channel must be bit-identical
            np.testing.assert_array_equal(adv.adjacency, clean.adjacency)

    def test_no_rng_starts_from_clean_sample(self, rng):
        acfgs = AttributeScaler().fit_transform(toy_dataset(rng))[:4]
        labels = np.array([g.label for g in acfgs], dtype=np.int64)
        model = small_model()
        first, _ = perturb_batch_scaled(
            model, acfgs, labels, epsilon=0.5, steps=1, step_size=0.25
        )
        second, _ = perturb_batch_scaled(
            model, acfgs, labels, epsilon=0.5, steps=1, step_size=0.25
        )
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.attributes, b.attributes)
