"""Additional trainer edge cases and failure injection."""

import numpy as np
import pytest

from repro.core.dgcnn import ModelConfig, build_model
from repro.features.acfg import ACFG
from repro.train.trainer import Trainer, TrainingConfig


def tiny_model(num_classes=2, seed=0):
    return build_model(ModelConfig(
        num_attributes=3, num_classes=num_classes, pooling="sort_weighted",
        graph_conv_sizes=(4,), sort_k=2, hidden_size=4, dropout=0.0,
        seed=seed,
    ))


def make_acfgs(rng, count, num_classes=2, c=3):
    acfgs = []
    for i in range(count):
        n = int(rng.integers(2, 5))
        acfgs.append(ACFG(
            adjacency=(rng.random((n, n)) < 0.4).astype(float),
            attributes=rng.standard_normal((n, c)),
            label=i % num_classes,
        ))
    return acfgs


class TestEdgeCases:
    def test_single_sample_training(self, rng):
        acfgs = make_acfgs(rng, 1)
        acfgs[0].label = 0
        history = Trainer(TrainingConfig(epochs=1, batch_size=1)).train(
            tiny_model(), acfgs
        )
        assert history.num_epochs == 1

    def test_batch_larger_than_dataset(self, rng):
        acfgs = make_acfgs(rng, 3)
        history = Trainer(TrainingConfig(epochs=1, batch_size=100)).train(
            tiny_model(), acfgs
        )
        assert history.num_epochs == 1

    def test_lr_decay_rule_fires_during_training(self, rng):
        """With an absurdly high LR the validation loss oscillates and
        the paper's two-consecutive-increases rule must fire."""
        acfgs = make_acfgs(rng, 12)
        train, val = acfgs[:8], acfgs[8:]
        history = Trainer(TrainingConfig(
            epochs=12, batch_size=4, learning_rate=5.0,
        )).train(tiny_model(), train, val)
        assert history.learning_rates[-1] < 5.0

    def test_single_class_dataset_trains(self, rng):
        # Degenerate but legal: all labels identical.
        acfgs = make_acfgs(rng, 4, num_classes=1)
        for acfg in acfgs:
            acfg.label = 0
        history = Trainer(TrainingConfig(epochs=1, batch_size=2)).train(
            tiny_model(num_classes=2), acfgs
        )
        assert np.isfinite(history.train_losses[0])

    def test_history_learning_rates_recorded(self, rng):
        acfgs = make_acfgs(rng, 4)
        history = Trainer(TrainingConfig(epochs=3, batch_size=2)).train(
            tiny_model(), acfgs
        )
        assert len(history.learning_rates) == 3

    def test_restore_best_false_keeps_final_weights(self, rng):
        acfgs = make_acfgs(rng, 10)
        train, val = acfgs[:7], acfgs[7:]
        model = tiny_model()
        trainer = Trainer(TrainingConfig(epochs=6, batch_size=4,
                                         learning_rate=0.05))
        history = trainer.train(model, train, val, restore_best=False)
        final = Trainer.evaluate_loss(model, val)
        # Final weights are epoch-6 weights, not necessarily the best.
        assert final == pytest.approx(history.validation_losses[-1], rel=1e-6)
