"""Tests for the parallel sweep engine (repro.train.sweep).

The load-bearing property is *bit-for-bit equivalence*: fanning the
(setting x fold) product over worker processes, journaling it, killing
it and resuming it must all reproduce exactly what the serial
``GridSearch.run`` loop computes — same rankings, same per-fold
validation-loss arrays, exact float equality.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.datasets import generate_mskcfg_dataset
from repro.exceptions import ConfigurationError
from repro.train.hyperparameter import (
    GridSearch,
    HyperparameterSetting,
    dataset_invariants,
)
from repro.train.sweep import SweepExecutor, SweepJournal, setting_key

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def small_settings():
    """Two cheap sort_weighted grid points (no Conv heads)."""
    return [
        HyperparameterSetting(
            pooling="sort_weighted", pooling_ratio=0.2,
            graph_conv_sizes=(6, 6), dropout=0.0, batch_size=8,
        ),
        HyperparameterSetting(
            pooling="sort_weighted", pooling_ratio=0.64,
            graph_conv_sizes=(6, 6), dropout=0.0, batch_size=8,
        ),
    ]


@pytest.fixture(scope="module")
def sweep_dataset():
    return generate_mskcfg_dataset(total=30, seed=7, minimum_per_family=4)


def make_search(dataset, **overrides):
    kwargs = dict(epochs=2, n_splits=2, hidden_size=8, seed=0)
    kwargs.update(overrides)
    return GridSearch(dataset, **kwargs)


def assert_bitwise_equal(a, b):
    """Two GridSearchResults carry identical rankings and histories."""
    assert [setting_key(e.setting) for e in a.ranking()] == [
        setting_key(e.setting) for e in b.ranking()
    ]
    for ea, eb in zip(a.entries, b.entries):
        assert ea.setting == eb.setting
        assert ea.score == eb.score
        assert np.array_equal(
            ea.result.epoch_validation_losses, eb.result.epoch_validation_losses
        )
        for ha, hb in zip(ea.result.fold_histories, eb.result.fold_histories):
            assert ha.validation_losses == hb.validation_losses
            assert ha.train_losses == hb.train_losses
        assert np.array_equal(
            ea.result.averaged_report.confusion,
            eb.result.averaged_report.confusion,
        )


class TestSettingKey:
    def test_stable_across_calls(self):
        a, b = small_settings()
        assert setting_key(a) == setting_key(a)
        assert setting_key(a) != setting_key(b)

    def test_independent_of_grid_position(self):
        a, b = small_settings()
        assert [setting_key(s) for s in [a, b]] == list(
            reversed([setting_key(s) for s in [b, a]])
        )


class TestEquivalence:
    def test_parallel_matches_serial_exactly(self, sweep_dataset):
        """The acceptance criterion: n_jobs=2 == serial, float-exact."""
        serial = make_search(sweep_dataset).run(small_settings())
        report = SweepExecutor(make_search(sweep_dataset), n_jobs=2).run(
            small_settings()
        )
        assert report.failures == []
        assert report.executed_folds == 4
        assert_bitwise_equal(serial, report.grid_result)

    def test_grid_search_n_jobs_delegates(self, sweep_dataset):
        serial = make_search(sweep_dataset).run(small_settings())
        parallel = make_search(sweep_dataset).run(small_settings(), n_jobs=2)
        assert parallel.failures == []
        assert_bitwise_equal(serial, parallel)

    def test_progress_fires_once_per_setting(self, sweep_dataset):
        calls = []
        search = make_search(
            sweep_dataset,
            progress=lambda i, n, s, score: calls.append((i, n)),
        )
        SweepExecutor(search, n_jobs=2).run(small_settings())
        assert sorted(calls) == [(1, 2), (2, 2)]


class TestJournalResume:
    def test_full_journal_resume_skips_everything(self, sweep_dataset, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        first = SweepExecutor(
            make_search(sweep_dataset), journal_path=journal
        ).run(small_settings())
        assert first.executed_folds == 4 and first.resumed_folds == 0

        resumed = SweepExecutor(
            make_search(sweep_dataset), journal_path=journal, resume=True
        ).run(small_settings())
        assert resumed.executed_folds == 0 and resumed.resumed_folds == 4
        assert_bitwise_equal(first.grid_result, resumed.grid_result)

    def test_partial_journal_resume_reproduces_result(
        self, sweep_dataset, tmp_path
    ):
        journal = str(tmp_path / "sweep.jsonl")
        full = SweepExecutor(
            make_search(sweep_dataset), journal_path=journal
        ).run(small_settings())

        # Simulate a kill after two folds, mid-write of the third.
        lines = open(journal).read().splitlines()
        assert len(lines) == 5  # header + 4 folds
        with open(journal, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n" + lines[3][:25])

        resumed = SweepExecutor(
            make_search(sweep_dataset), journal_path=journal,
            resume=True, n_jobs=2,
        ).run(small_settings())
        assert resumed.resumed_folds == 2 and resumed.executed_folds == 2
        assert_bitwise_equal(full.grid_result, resumed.grid_result)

    def test_fingerprint_mismatch_refused(self, sweep_dataset, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        SweepExecutor(
            make_search(sweep_dataset), journal_path=journal
        ).run(small_settings())
        with pytest.raises(ConfigurationError, match="fingerprint"):
            SweepExecutor(
                make_search(sweep_dataset, epochs=3),
                journal_path=journal, resume=True,
            ).run(small_settings())

    def test_journal_without_resume_starts_fresh(self, sweep_dataset, tmp_path):
        journal = str(tmp_path / "sweep.jsonl")
        SweepExecutor(
            make_search(sweep_dataset), journal_path=journal
        ).run(small_settings())
        again = SweepExecutor(
            make_search(sweep_dataset), journal_path=journal
        ).run(small_settings())
        assert again.resumed_folds == 0 and again.executed_folds == 4
        records = [json.loads(line) for line in open(journal)]
        assert [r["kind"] for r in records] == ["header"] + ["fold"] * 4

    def test_missing_journal_with_resume_is_fresh_start(
        self, sweep_dataset, tmp_path
    ):
        journal = str(tmp_path / "absent.jsonl")
        report = SweepExecutor(
            make_search(sweep_dataset), journal_path=journal, resume=True
        ).run(small_settings())
        assert report.resumed_folds == 0 and report.executed_folds == 4
        assert os.path.exists(journal)


class TestFaultTolerance:
    def test_transient_failure_retried_once(
        self, sweep_dataset, monkeypatch
    ):
        import repro.train.sweep as sweep_module

        real_run_fold = sweep_module.run_fold
        poisoned = {"remaining": 1}

        def flaky(spec, dataset, model_factory=None):
            if spec.fold_index == 1 and poisoned["remaining"]:
                poisoned["remaining"] -= 1
                raise RuntimeError("synthetic transient fold crash")
            return real_run_fold(spec, dataset, model_factory=model_factory)

        monkeypatch.setattr(sweep_module, "run_fold", flaky)
        serial = make_search(sweep_dataset).run(small_settings())
        report = SweepExecutor(make_search(sweep_dataset), n_jobs=1).run(
            small_settings()
        )
        assert report.failures == []
        assert_bitwise_equal(serial, report.grid_result)

    def test_persistent_failure_reported_not_raised(
        self, sweep_dataset, monkeypatch, tmp_path
    ):
        import repro.train.sweep as sweep_module

        real_run_fold = sweep_module.run_fold
        settings = small_settings()
        poison_key = setting_key(settings[0])
        search = make_search(sweep_dataset)
        poison_config, _ = search.configs_for(
            settings[0], *dataset_invariants(sweep_dataset)
        )

        def always_broken(spec, dataset, model_factory=None):
            if spec.model_config == poison_config:
                raise RuntimeError("synthetic persistent fold crash")
            return real_run_fold(spec, dataset, model_factory=model_factory)

        monkeypatch.setattr(sweep_module, "run_fold", always_broken)
        journal = str(tmp_path / "sweep.jsonl")
        report = SweepExecutor(
            search, n_jobs=1, journal_path=journal
        ).run(settings)

        assert report.failures, "persistent crash should be reported"
        assert all(f.attempts == 2 for f in report.failures)
        assert all(f.setting_key == poison_key for f in report.failures)
        # The healthy setting still produced its entry.
        assert [e.setting for e in report.grid_result.entries] == [settings[1]]
        assert report.grid_result.failures == report.failures
        kinds = [json.loads(line)["kind"] for line in open(journal)]
        assert "failure" in kinds

    def test_invalid_n_jobs_rejected(self, sweep_dataset):
        with pytest.raises(ConfigurationError):
            SweepExecutor(make_search(sweep_dataset), n_jobs=0)


class TestDatasetInvariants:
    def test_returns_hoisted_invariants(self, sweep_dataset):
        num_attributes, graph_sizes = dataset_invariants(sweep_dataset)
        assert num_attributes == sweep_dataset.acfgs[0].num_attributes
        assert graph_sizes == sweep_dataset.graph_sizes()

    def test_emptied_dataset_raises_configuration_error(self, sweep_dataset):
        search = make_search(sweep_dataset)
        search.dataset = sweep_dataset.subset(range(len(sweep_dataset)))
        search.dataset.acfgs.clear()  # the empty-but-constructed misuse path
        with pytest.raises(ConfigurationError, match="no ACFGs"):
            search.run(small_settings())


class TestKillAndResume:
    """End-to-end: SIGKILL a journaled CLI sweep, resume, compare."""

    CLI_ARGS = [
        "sweep", "--dataset", "mskcfg", "--total", "30", "--settings", "2",
        "--epochs", "2", "--folds", "2", "--hidden-size", "8", "--seed", "0",
    ]

    def run_cli(self, tmp_path, tag, extra):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        output = str(tmp_path / f"{tag}.json")
        cmd = [sys.executable, "-m", "repro.cli", *self.CLI_ARGS,
               "--output", output, *extra]
        return cmd, env, output

    def test_killed_sweep_resumes_to_identical_ranking(self, tmp_path):
        # Reference: uninterrupted, journal-free run.
        cmd, env, reference_path = self.run_cli(tmp_path, "reference", [])
        subprocess.run(cmd, env=env, check=True, capture_output=True,
                       timeout=300)

        # Interrupted run: SIGKILL once the first fold hits the journal.
        journal = str(tmp_path / "sweep.jsonl")
        cmd, env, _ = self.run_cli(
            tmp_path, "interrupted", ["--journal", journal]
        )
        process = subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        try:
            deadline = time.time() + 240
            while time.time() < deadline and process.poll() is None:
                if os.path.exists(journal):
                    folds = [
                        line for line in open(journal).read().splitlines()
                        if '"kind": "fold"' in line
                    ]
                    if folds:
                        break
                time.sleep(0.02)
            if process.poll() is None:
                process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()

        # Resume and compare against the uninterrupted ranking.
        cmd, env, resumed_path = self.run_cli(
            tmp_path, "resumed", ["--journal", journal, "--resume"]
        )
        subprocess.run(cmd, env=env, check=True, capture_output=True,
                       timeout=300)

        with open(reference_path) as handle:
            reference = json.load(handle)
        with open(resumed_path) as handle:
            resumed = json.load(handle)
        assert resumed == reference  # exact, including float reprs

        # The journal holds each fold exactly once: resume skipped
        # completed work instead of redoing it.
        records = [json.loads(line) for line in open(journal)
                   if line.strip() and '"fold"' in line]
        fold_units = [(r["setting"], r["fold"]) for r in records
                      if r["kind"] == "fold"]
        assert len(fold_units) == len(set(fold_units)) == 4


class TestJournalUnit:
    def test_header_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = SweepJournal(path, {"epochs": 2, "n_splits": 2})
        journal.open_for_append(fresh=True)
        journal.close()
        same = SweepJournal(path, {"epochs": 2, "n_splits": 2})
        assert same.load_completed() == {}
        other = SweepJournal(path, {"epochs": 3, "n_splits": 2})
        with pytest.raises(ConfigurationError):
            other.load_completed()

    def test_non_header_first_line_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"kind": "fold"}\n')
        with pytest.raises(ConfigurationError, match="header"):
            SweepJournal(path, {}).load_completed()
