"""Tests for confusion analysis."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.train.analysis import (
    format_confusions,
    hardest_families,
    top_confusions,
)
from repro.train.metrics import evaluate_predictions


def make_report():
    # 3 classes; class 0 perfect, class 1 half-confused with 2, class 2 ok.
    y_true = np.array([0, 0, 1, 1, 1, 1, 2, 2])
    proba = np.eye(3)[np.array([0, 0, 1, 1, 2, 2, 2, 2])]
    return evaluate_predictions(y_true, proba, 3, family_names=["a", "b", "c"])


class TestTopConfusions:
    def test_most_frequent_first(self):
        pairs = top_confusions(make_report())
        assert pairs[0].true_family == "b"
        assert pairs[0].predicted_family == "c"
        assert pairs[0].count == 2
        assert pairs[0].rate == pytest.approx(0.5)

    def test_diagonal_excluded(self):
        for pair in top_confusions(make_report()):
            assert pair.true_family != pair.predicted_family

    def test_limit(self):
        assert len(top_confusions(make_report(), limit=1)) == 1

    def test_requires_family_names(self):
        report = evaluate_predictions(
            np.array([0, 1]), np.eye(2), 2, family_names=None
        )
        with pytest.raises(TrainingError):
            top_confusions(report)

    def test_perfect_classifier_has_no_confusions(self):
        y = np.array([0, 1, 2])
        report = evaluate_predictions(y, np.eye(3)[y], 3,
                                      family_names=["a", "b", "c"])
        assert top_confusions(report) == []


class TestHardestFamilies:
    def test_ordering(self):
        names = hardest_families(make_report())
        assert names[0] == "b"  # recall 0.5 -> lowest F1

    def test_limit(self):
        assert hardest_families(make_report(), limit=2) == ["b", "c"]


class TestFormatting:
    def test_format(self):
        text = format_confusions(top_confusions(make_report()))
        assert "b" in text and "->" in text and "%" in text

    def test_empty(self):
        assert format_confusions([]) == "(no confusions)"
