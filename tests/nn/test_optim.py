"""Tests for SGD and Adam."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Linear, Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


class TestOptimizerValidation:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam([quadratic_param()], lr=0.0)

    def test_bad_betas_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam([quadratic_param()], lr=0.1, betas=(1.0, 0.999))


class TestSGD:
    def test_plain_step(self):
        p = quadratic_param(2.0)
        p.grad = np.array([1.0])
        SGD([p], lr=0.5).step()
        np.testing.assert_allclose(p.data, [1.5])

    def test_momentum_accumulates(self):
        p = quadratic_param(0.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = quadratic_param(10.0)
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=1.0).step()
        np.testing.assert_allclose(p.data, [9.0])

    def test_none_grad_skipped(self):
        p = quadratic_param(3.0)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [3.0])

    def test_minimizes_quadratic(self):
        p = quadratic_param(5.0)
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (Tensor(p.data) * 0 + p) ** 2
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-3


class TestAdam:
    def test_first_step_size_equals_lr(self):
        # Adam's bias correction makes the first step ~lr regardless of
        # gradient magnitude.
        p = quadratic_param(0.0)
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1234.5])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)

    def test_minimizes_quadratic(self):
        p = quadratic_param(5.0)
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            loss = p ** 2
            loss.backward()
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_pulls_to_zero(self):
        p = quadratic_param(1.0)
        opt = Adam([p], lr=0.05, weight_decay=1.0)
        for _ in range(400):
            opt.zero_grad()
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        true_w = np.array([[2.0], [-3.0]])
        x = rng.standard_normal((100, 2))
        y = x @ true_w
        layer = Linear(2, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = ((layer(Tensor(x)) - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_zero_grad_clears_all(self):
        p1, p2 = quadratic_param(), quadratic_param()
        p1.grad = np.ones(1)
        p2.grad = np.ones(1)
        buffers = (p1.grad, p2.grad)
        Adam([p1, p2], lr=0.1).zero_grad()
        # Cleared in place, not dropped: the arrays survive for tape
        # replays and accumulate from zero on the next backward.
        assert p1.grad is buffers[0] and p2.grad is buffers[1]
        assert not p1.grad.any() and not p2.grad.any()
