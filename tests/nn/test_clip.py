"""Tests for gradient clipping."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.clip import clip_grad_norm
from repro.nn.layers import Parameter


def param_with_grad(grad):
    p = Parameter(np.zeros_like(np.asarray(grad, dtype=float)))
    p.grad = np.asarray(grad, dtype=float)
    return p


class TestClipGradNorm:
    def test_below_threshold_unchanged(self):
        p = param_with_grad([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(p.grad, [3.0, 4.0])

    def test_above_threshold_scaled(self):
        p = param_with_grad([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)
        # Direction preserved.
        np.testing.assert_allclose(p.grad / np.linalg.norm(p.grad),
                                   [0.6, 0.8], atol=1e-9)

    def test_global_norm_across_parameters(self):
        a = param_with_grad([3.0])
        b = param_with_grad([4.0])
        norm = clip_grad_norm([a, b], max_norm=2.5)  # global norm 5
        assert norm == pytest.approx(5.0)
        total = math.sqrt(float((a.grad ** 2).sum() + (b.grad ** 2).sum()))
        assert total == pytest.approx(2.5, rel=1e-6)

    def test_none_grads_skipped(self):
        p = Parameter(np.zeros(3))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0  # repro: allow[float-equality] — exact by construction

    def test_invalid_max_norm(self):
        with pytest.raises(ConfigurationError):
            clip_grad_norm([], max_norm=0.0)


class TestTrainerIntegration:
    def test_training_with_clipping_runs(self, rng):
        from repro.core.dgcnn import ModelConfig, build_model
        from repro.features.acfg import ACFG
        from repro.train.trainer import Trainer, TrainingConfig

        acfgs = []
        for i in range(8):
            n = 5
            acfgs.append(ACFG(
                adjacency=(rng.random((n, n)) < 0.3).astype(float),
                attributes=rng.standard_normal((n, 11)),
                label=i % 2,
            ))
        model = build_model(ModelConfig(
            num_attributes=11, num_classes=2, pooling="sort_weighted",
            graph_conv_sizes=(4, 4), sort_k=3, hidden_size=8, seed=0,
        ))
        history = Trainer(
            TrainingConfig(epochs=2, batch_size=4, grad_clip_norm=1.0)
        ).train(model, acfgs)
        assert history.num_epochs == 2
