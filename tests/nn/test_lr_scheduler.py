"""Tests for the paper's LR decay rule (Section V-B)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Parameter
from repro.nn.lr_scheduler import ReduceLROnPlateau
from repro.nn.optim import SGD


def make_scheduler(patience=2, factor=0.1, min_lr=1e-8):
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    return opt, ReduceLROnPlateau(opt, factor=factor, patience=patience, min_lr=min_lr)


class TestPaperRule:
    def test_two_consecutive_increases_trigger_decay(self):
        opt, sched = make_scheduler()
        assert not sched.step(1.0)
        assert not sched.step(1.1)   # one increase
        assert sched.step(1.2)       # second consecutive increase -> decay
        assert opt.lr == pytest.approx(0.1)

    def test_non_consecutive_increases_do_not_trigger(self):
        opt, sched = make_scheduler()
        sched.step(1.0)
        sched.step(1.1)   # increase
        sched.step(0.9)   # decrease resets the counter
        assert not sched.step(1.0)  # single increase again
        assert opt.lr == 1.0  # repro: allow[float-equality] — exact by construction

    def test_counter_resets_after_decay(self):
        opt, sched = make_scheduler()
        sched.step(1.0)
        sched.step(1.1)
        sched.step(1.2)  # decay #1
        assert not sched.step(1.3)  # one increase since decay
        assert sched.step(1.4)      # second -> decay #2
        assert opt.lr == pytest.approx(0.01)
        assert sched.num_reductions == 2

    def test_min_lr_floor(self):
        opt, sched = make_scheduler(min_lr=0.05)
        losses = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6]
        for loss in losses:
            sched.step(loss)
        assert opt.lr >= 0.05

    def test_equal_loss_is_not_an_increase(self):
        opt, sched = make_scheduler()
        sched.step(1.0)
        sched.step(1.0)
        sched.step(1.0)
        assert opt.lr == 1.0  # repro: allow[float-equality] — exact by construction


class TestValidation:
    def test_bad_factor(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ConfigurationError):
            ReduceLROnPlateau(opt, factor=1.5)

    def test_bad_patience(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ConfigurationError):
            ReduceLROnPlateau(opt, patience=0)
