"""Tests for weight initialization."""

import math

import numpy as np

from repro.nn.init import kaiming_uniform, xavier_uniform, zeros, _fans


class TestFans:
    def test_vector(self):
        assert _fans((7,)) == (7, 7)

    def test_linear_orientation(self):
        assert _fans((3, 5)) == (3, 5)

    def test_conv2d(self):
        # (out=8, in=4, kernel 3x3): fan_in = 4*9, fan_out = 8*9.
        assert _fans((8, 4, 3, 3)) == (36, 72)

    def test_conv1d(self):
        assert _fans((6, 2, 5)) == (10, 30)


class TestXavier:
    def test_bounds(self, rng):
        weights = xavier_uniform((50, 80), rng)
        bound = math.sqrt(6.0 / (50 + 80))
        assert weights.shape == (50, 80)
        assert np.abs(weights).max() <= bound

    def test_roughly_zero_mean(self, rng):
        weights = xavier_uniform((200, 200), rng)
        assert abs(weights.mean()) < 0.01


class TestKaiming:
    def test_bounds(self, rng):
        weights = kaiming_uniform((16, 3, 3, 3), rng)
        bound = math.sqrt(6.0 / (3 * 9))
        assert np.abs(weights).max() <= bound


class TestZeros:
    def test_zeros(self):
        np.testing.assert_array_equal(zeros((2, 3)), np.zeros((2, 3)))
