"""Finite-difference gradient checks for every differentiable operation.

The whole reproduction stands on these gradients being right, so each op
is checked against central differences at ~1e-6 precision.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, concatenate, gather_rows, pad_rows, stack

EPS = 1e-6
TOL = 1e-5


def numeric_gradient(fn, x0):
    grad = np.zeros_like(x0)
    flat = grad.reshape(-1)
    base = x0.reshape(-1)
    for i in range(base.size):
        plus = base.copy()
        minus = base.copy()
        plus[i] += EPS
        minus[i] -= EPS
        f_plus = fn(Tensor(plus.reshape(x0.shape))).data.sum()
        f_minus = fn(Tensor(minus.reshape(x0.shape))).data.sum()
        flat[i] = (f_plus - f_minus) / (2 * EPS)
    return grad


def check(fn, x0):
    x = Tensor(x0.copy(), requires_grad=True)
    out = fn(x)
    out.sum().backward()
    numeric = numeric_gradient(fn, x0)
    np.testing.assert_allclose(x.grad, numeric, atol=TOL, rtol=TOL)


RNG = np.random.default_rng(7)


class TestElementwiseGradients:
    def test_add_mul_chain(self):
        check(lambda x: x * 3 + x * x, RNG.standard_normal((3, 4)))

    def test_div(self):
        check(lambda x: x / Tensor([[2.0, 4.0, 8.0]]), RNG.standard_normal((2, 3)) + 5)

    def test_div_by_tensor_denominator(self):
        w = RNG.standard_normal((2, 3)) + 3
        check(lambda x: Tensor(np.ones((2, 3))) / (x + 5), w)

    def test_pow(self):
        check(lambda x: x ** 3, RNG.standard_normal((4,)))

    def test_relu(self):
        check(lambda x: x.relu(), RNG.standard_normal((5, 3)) + 0.1)

    def test_tanh(self):
        check(lambda x: x.tanh(), RNG.standard_normal((5,)))

    def test_sigmoid(self):
        check(lambda x: x.sigmoid(), RNG.standard_normal((5,)))

    def test_exp_log(self):
        check(lambda x: (x.exp() + 1).log(), RNG.standard_normal((4,)))


class TestShapeGradients:
    def test_matmul_left_and_right(self):
        b = Tensor(RNG.standard_normal((4, 5)))
        check(lambda x: x @ b, RNG.standard_normal((3, 4)))
        a = Tensor(RNG.standard_normal((3, 4)))
        check(lambda x: a @ x, RNG.standard_normal((4, 5)))

    def test_matmul_vector(self):
        b = Tensor(RNG.standard_normal((4,)))
        check(lambda x: x @ b, RNG.standard_normal((3, 4)))

    def test_transpose_reshape(self):
        check(lambda x: (x.T @ x).reshape(-1), RNG.standard_normal((3, 4)))

    def test_getitem(self):
        check(lambda x: x[1:3] * 2, RNG.standard_normal((5, 2)))

    def test_sum_axes(self):
        check(lambda x: x.sum(axis=0), RNG.standard_normal((3, 4)))
        check(lambda x: x.sum(axis=1, keepdims=True), RNG.standard_normal((3, 4)))

    def test_mean(self):
        check(lambda x: x.mean(axis=1), RNG.standard_normal((3, 4)))

    def test_max_axis(self):
        # Perturb away from ties for a clean finite-difference check.
        x0 = RNG.standard_normal((4, 5)) * 3
        check(lambda x: x.max(axis=1), x0)
        check(lambda x: x.max(axis=0, keepdims=True), x0)

    def test_concatenate(self):
        other = Tensor(RNG.standard_normal((2, 3)))
        check(lambda x: concatenate([x, other], axis=0), RNG.standard_normal((3, 3)))

    def test_stack(self):
        other = Tensor(RNG.standard_normal((3,)))
        check(lambda x: stack([x, other], axis=0), RNG.standard_normal((3,)))

    def test_gather_and_pad(self):
        idx = np.array([1, 1, 0])
        check(lambda x: gather_rows(x, idx), RNG.standard_normal((3, 2)))
        check(lambda x: pad_rows(x, 6), RNG.standard_normal((3, 2)))


class TestFunctionalGradients:
    def test_log_softmax(self):
        weights = Tensor(RNG.standard_normal((3, 4)))
        check(lambda x: F.log_softmax(x, axis=-1) * weights,
              RNG.standard_normal((3, 4)))

    def test_softmax(self):
        weights = Tensor(RNG.standard_normal((2, 5)))
        check(lambda x: F.softmax(x, axis=-1) * weights,
              RNG.standard_normal((2, 5)))

    def test_conv1d(self):
        w = Tensor(RNG.standard_normal((3, 2, 4)))
        check(lambda x: F.conv1d(x, w, stride=2), RNG.standard_normal((2, 2, 10)))

    def test_conv1d_weight_grad(self):
        x = Tensor(RNG.standard_normal((2, 2, 8)))
        check(lambda w: F.conv1d(x, w, stride=1), RNG.standard_normal((3, 2, 3)))

    def test_conv1d_bias_grad(self):
        x = Tensor(RNG.standard_normal((2, 2, 8)))
        w = Tensor(RNG.standard_normal((3, 2, 3)))
        check(lambda b: F.conv1d(x, w, b), RNG.standard_normal((3,)))

    def test_conv2d_input_grad(self):
        w = Tensor(RNG.standard_normal((4, 3, 3, 3)))
        check(
            lambda x: F.conv2d(x, w, stride=(2, 1), padding=1),
            RNG.standard_normal((2, 3, 5, 6)),
        )

    def test_conv2d_weight_grad(self):
        x = Tensor(RNG.standard_normal((2, 3, 5, 6)))
        check(lambda w: F.conv2d(x, w, padding=1), RNG.standard_normal((4, 3, 3, 3)))

    def test_conv2d_bias_grad(self):
        x = Tensor(RNG.standard_normal((1, 2, 4, 4)))
        w = Tensor(RNG.standard_normal((3, 2, 2, 2)))
        check(lambda b: F.conv2d(x, w, b), RNG.standard_normal((3,)))

    def test_max_pool2d(self):
        check(lambda x: F.max_pool2d(x, 2), RNG.standard_normal((2, 3, 6, 6)) * 3)

    def test_max_pool1d(self):
        check(lambda x: F.max_pool1d(x, 2), RNG.standard_normal((2, 3, 9)) * 3)

    def test_adaptive_max_pool2d(self):
        check(
            lambda x: F.adaptive_max_pool2d(x, (3, 3)),
            RNG.standard_normal((2, 2, 5, 7)) * 3,
        )

    def test_adaptive_max_pool2d_upsampling_case(self):
        # Output grid larger than input: windows overlap/repeat.
        check(
            lambda x: F.adaptive_max_pool2d(x, (4, 4)),
            RNG.standard_normal((1, 1, 2, 3)) * 3,
        )

    def test_dropout_eval_mode_is_identity(self):
        x0 = RNG.standard_normal((3, 3))
        check(lambda x: F.dropout(x, 0.5, training=False), x0)

    def test_dropout_train_mask_consistent(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200,)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # Gradient equals the applied mask (0 or 1/(1-p)).
        np.testing.assert_allclose(
            np.unique(x.grad), np.array([0.0, 2.0])
        )


class TestGradcheckProperties:
    @given(
        n=st.integers(2, 5), m=st.integers(2, 5), seed=st.integers(0, 1000)
    )
    @settings(max_examples=20, deadline=None)
    def test_random_composite_expressions(self, n, m, seed):
        """Property: composite expressions gradcheck at random shapes."""
        rng = np.random.default_rng(seed)
        w = Tensor(rng.standard_normal((m, n)))
        x0 = rng.standard_normal((n, m))
        check(lambda x: ((x @ w).tanh() * 2 + 1).relu(), x0)
