"""Tests for the Module system and layers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn.layers import (
    Conv1d,
    Conv2d,
    Dropout,
    Linear,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.pooling import AdaptiveMaxPool2d, MaxPool2d
from repro.nn.tensor import Tensor


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules(self):
        model = Sequential(Linear(4, 8), ReLU(), Linear(8, 2))
        names = [name for name, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer2.bias" in names
        assert len(model.parameters()) == 4

    def test_train_eval_recurses(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        buffer = layer.weight.grad
        layer.zero_grad()
        # In-place zero fill: the buffer identity is part of the
        # contract (compiled tapes accumulate into it across steps).
        assert layer.weight.grad is buffer
        assert not layer.weight.grad.any()

    def test_num_parameters(self):
        layer = Linear(3, 2)
        assert layer.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        b = Linear(3, 2, rng=np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch_rejected(self):
        layer = Linear(3, 2)
        with pytest.raises(ConfigurationError):
            layer.load_state_dict({"weight": np.zeros((3, 2))})  # missing bias
        with pytest.raises(ConfigurationError):
            layer.load_state_dict(
                {"weight": np.zeros((9, 9)), "bias": np.zeros(2)}
            )


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3)
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_shape_validation(self):
        layer = Linear(4, 3)
        with pytest.raises(ShapeError):
            layer(Tensor(np.zeros((5, 7))))

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_affine_correctness(self):
        layer = Linear(2, 2)
        layer.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias.data = np.array([10.0, 20.0])
        out = layer(Tensor(np.array([[3.0, 4.0]])))
        np.testing.assert_array_equal(out.data, [[13.0, 28.0]])


class TestConvLayers:
    def test_conv1d_shapes(self):
        layer = Conv1d(2, 4, kernel_size=3, stride=3)
        assert layer(Tensor(np.zeros((1, 2, 9)))).shape == (1, 4, 3)

    def test_conv2d_shapes(self):
        layer = Conv2d(1, 8, kernel_size=3, padding=1)
        assert layer(Tensor(np.zeros((2, 1, 5, 6)))).shape == (2, 8, 5, 6)

    def test_pooling_modules(self):
        x = Tensor(np.random.default_rng(0).standard_normal((1, 2, 6, 6)))
        assert MaxPool2d(2)(x).shape == (1, 2, 3, 3)
        assert AdaptiveMaxPool2d((3, 3))(x).shape == (1, 2, 3, 3)


class TestDropoutLayer:
    def test_training_vs_eval(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones(1000))
        layer.train(True)
        trained = layer(x)
        assert (trained.data == 0).any()
        layer.eval()
        assert layer(x) is x


class TestSequential:
    def test_composition(self):
        model = Sequential(Linear(2, 4), Tanh(), Linear(4, 1))
        assert model(Tensor(np.zeros((3, 2)))).shape == (3, 1)

    def test_len_getitem(self):
        model = Sequential(Linear(2, 2), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)
