"""Hypothesis property tests: algebraic identities of the autograd engine.

Each identity is checked for both forward values *and* gradients — a
broken backward rule can agree on values while disagreeing on grads.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor


def _grad_of(fn, x0):
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).sum().backward()
    return x.grad


shapes = st.tuples(st.integers(1, 4), st.integers(1, 4))


@st.composite
def array_pair(draw):
    shape = draw(shapes)
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape), rng.standard_normal(shape)


class TestDistributivity:
    @given(array_pair(), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_matmul_distributes_over_addition(self, pair, seed):
        a0, b0 = pair
        c = Tensor(np.random.default_rng(seed).standard_normal(
            (a0.shape[1], 3)
        ))
        b = Tensor(b0)

        left = _grad_of(lambda x: (x + b) @ c, a0)
        right = _grad_of(lambda x: x @ c + b @ c, a0)
        np.testing.assert_allclose(left, right, atol=1e-10)

    @given(array_pair())
    @settings(max_examples=40, deadline=None)
    def test_mul_add_expansion(self, pair):
        a0, b0 = pair
        b = Tensor(b0)
        left = _grad_of(lambda x: (x + b) * (x + b), a0)
        right = _grad_of(lambda x: x * x + 2 * (x * b) + b * b, a0)
        np.testing.assert_allclose(left, right, atol=1e-9)


class TestIdentities:
    @given(array_pair())
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, pair):
        a0, _ = pair
        np.testing.assert_allclose(
            _grad_of(lambda x: -(-x), a0), np.ones_like(a0)
        )

    @given(array_pair())
    @settings(max_examples=40, deadline=None)
    def test_sub_equals_add_neg(self, pair):
        a0, b0 = pair
        b = Tensor(b0)
        np.testing.assert_allclose(
            _grad_of(lambda x: x - b, a0),
            _grad_of(lambda x: x + (-b), a0),
        )

    @given(array_pair())
    @settings(max_examples=40, deadline=None)
    def test_exp_log_inverse(self, pair):
        a0, _ = pair
        # log(exp(x)) == x, gradient is exactly one.
        np.testing.assert_allclose(
            _grad_of(lambda x: x.exp().log(), a0),
            np.ones_like(a0),
            atol=1e-9,
        )

    @given(array_pair())
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, pair):
        a0, _ = pair
        np.testing.assert_allclose(
            _grad_of(lambda x: x.T.T * 3, a0), np.full_like(a0, 3.0)
        )

    @given(array_pair())
    @settings(max_examples=40, deadline=None)
    def test_sum_of_parts_equals_whole(self, pair):
        a0, _ = pair
        if a0.shape[0] < 2:
            return
        whole = _grad_of(lambda x: x.sum(), a0)
        parts = _grad_of(lambda x: x[:1].sum() + x[1:].sum(), a0)
        np.testing.assert_allclose(whole, parts)


class TestLinearity:
    @given(array_pair(), st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_gradient_scales_linearly(self, pair, scale):
        a0, _ = pair
        base = _grad_of(lambda x: (x * x).sum(), a0)
        scaled = _grad_of(lambda x: (x * x).sum() * scale, a0)
        np.testing.assert_allclose(scaled, base * scale, atol=1e-9)
