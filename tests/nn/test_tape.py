"""Tests for the compiled tape execution engine (`repro.nn.tape`).

The contract under test is the one DESIGN.md pins down: float64 replay
is *bit-exact* with the eager path (forward, loss, and every parameter
gradient), float32 is an opt-in inference-only mode with a documented
tolerance, and the signature cache re-captures exactly when the batch
shape/mode/dtype changes.
"""

import numpy as np
import pytest

from repro.core.batched import GraphBatch
from repro.core.dgcnn import POOLING_TYPES, ModelConfig, build_model
from repro.exceptions import CompilationError, GradientError
from repro.features.acfg import ACFG
from repro.nn.loss import nll_loss
from repro.nn.tape import CompiledModel, batch_signature
from repro.train.trainer import Trainer, TrainingConfig

NUM_ATTRIBUTES = 11
NUM_CLASSES = 4
#: Documented float32 tolerance (USAGE §14): a dozen fused layers of
#: single-precision arithmetic on z-scored attributes stays well under
#: 1e-4 absolute on the log-probabilities.
FLOAT32_ATOL = 1e-4


def random_acfg(rng, n, label=0):
    adjacency = (rng.random((n, n)) < 0.3).astype(float)
    np.fill_diagonal(adjacency, 0.0)
    return ACFG(
        adjacency=adjacency,
        attributes=rng.standard_normal((n, NUM_ATTRIBUTES)),
        label=label,
    )


def random_batch(rng, sizes=(3, 5, 2, 6)):
    return GraphBatch([random_acfg(rng, n) for n in sizes])


def small_config(pooling, dropout=0.0, seed=0):
    return ModelConfig(
        num_attributes=NUM_ATTRIBUTES,
        num_classes=NUM_CLASSES,
        pooling=pooling,
        graph_conv_sizes=(8, 8),
        sort_k=4,
        amp_grid=(2, 2),
        conv2d_channels=4,
        conv1d_channels=(4, 8),
        conv1d_kernel=3,
        hidden_size=16,
        dropout=dropout,
        seed=seed,
    )


def eager_gradients(model, batch, labels):
    """Eager forward+backward; returns (log_probs, {name: grad copy})."""
    for param in model.parameters():
        param.zero_grad()
    log_probs = model(batch)
    nll_loss(log_probs, labels).backward()
    return log_probs.data, {
        name: param.grad.copy()
        for name, param in model.named_parameters()
        if param.grad is not None
    }


def compiled_gradients(compiled, model, batch, labels):
    """Compiled forward+backward mirroring the trainer's seed rule."""
    for param in model.parameters():
        param.zero_grad()
    log_probs = compiled.forward(batch)
    rows = np.arange(len(labels))
    seed = np.zeros_like(log_probs)
    seed[rows, labels] = -(1.0 / len(labels))
    compiled.backward(seed)
    return log_probs, {
        name: param.grad.copy()
        for name, param in model.named_parameters()
        if param.grad is not None
    }


class TestFloat64Equivalence:
    """Replay must be indistinguishable from eager — to the bit."""

    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_forward_bit_exact_on_capture_and_replay(self, pooling):
        rng = np.random.default_rng(11)
        model = build_model(small_config(pooling)).eval()
        compiled = CompiledModel(model)
        first, second = random_batch(rng), random_batch(rng)

        captured = compiled.forward(first)
        assert np.array_equal(captured, model(first).data)  # repro: allow[float-equality] — bit-exactness is the contract under test
        replayed = compiled.forward(second)
        assert np.array_equal(replayed, model(second).data)  # repro: allow[float-equality] — bit-exactness is the contract under test
        stats = compiled.stats()
        assert stats["captures"] == 1 and stats["replays"] == 1
        assert stats["fused_ops"] > 0  # SpMM+ReLU / Linear+ReLU collapsed

    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_gradients_bit_exact_after_replay(self, pooling):
        rng = np.random.default_rng(23)
        eager_model = build_model(small_config(pooling)).eval()
        compiled_model = build_model(small_config(pooling)).eval()
        compiled = CompiledModel(compiled_model)
        labels = np.array([0, 1, 2, 3])
        batches = [random_batch(rng) for _ in range(2)]

        for batch in batches:  # second iteration exercises replay-backward
            _, expected = eager_gradients(eager_model, batch, labels)
            _, actual = compiled_gradients(
                compiled, compiled_model, batch, labels
            )
            assert expected.keys() == actual.keys()
            for name in expected:
                assert np.array_equal(actual[name], expected[name]), name  # repro: allow[float-equality] — bit-exactness is the contract under test

    def test_training_mode_dropout_stream_is_preserved(self):
        # Replay draws from the Dropout module's own rng, so a compiled
        # run consumes the identical stream an eager run would have.
        rng = np.random.default_rng(3)
        eager_model = build_model(small_config("sort_conv1d", dropout=0.4))
        compiled_model = build_model(small_config("sort_conv1d", dropout=0.4))
        eager_model.train(True)
        compiled_model.train(True)
        compiled = CompiledModel(compiled_model)
        labels = np.array([1, 3, 0, 2])
        for batch in [random_batch(rng) for _ in range(3)]:
            _, expected = eager_gradients(eager_model, batch, labels)
            _, actual = compiled_gradients(
                compiled, compiled_model, batch, labels
            )
            for name in expected:
                assert np.array_equal(actual[name], expected[name]), name  # repro: allow[float-equality] — bit-exactness is the contract under test
        assert compiled.stats()["replays"] == 2

    def test_full_training_run_matches_eager(self):
        rng = np.random.default_rng(5)
        data = [
            random_acfg(rng, int(rng.integers(3, 9)),
                        label=int(rng.integers(0, NUM_CLASSES)))
            for _ in range(20)
        ]
        histories, states = [], []
        for compiled in (False, True):
            model = build_model(small_config("adaptive", dropout=0.2))
            trainer = Trainer(TrainingConfig(
                epochs=3, batch_size=10, compiled=compiled, seed=9
            ))
            histories.append(trainer.train(model, data))
            states.append(model.state_dict())
        assert histories[0].train_losses == histories[1].train_losses  # repro: allow[float-equality] — bit-exactness is the contract under test
        for name in states[0]:
            assert np.array_equal(states[0][name], states[1][name]), name  # repro: allow[float-equality] — bit-exactness is the contract under test


class TestFloat32Inference:
    @pytest.mark.parametrize("pooling", POOLING_TYPES)
    def test_within_documented_tolerance(self, pooling):
        rng = np.random.default_rng(41)
        model = build_model(small_config(pooling)).eval()
        compiled = CompiledModel(model, dtype="float32")
        for batch in [random_batch(rng) for _ in range(2)]:  # capture + replay
            out = compiled.infer(batch)
            assert out.dtype == np.float32
            reference = model(batch).data
            np.testing.assert_allclose(
                out.astype(np.float64), reference, atol=FLOAT32_ATOL
            )

    def test_training_mode_is_rejected(self):
        model = build_model(small_config("adaptive")).train(True)
        compiled = CompiledModel(model, dtype="float32")
        with pytest.raises(CompilationError):
            compiled.forward(random_batch(np.random.default_rng(0)))

    def test_backward_is_rejected(self):
        rng = np.random.default_rng(1)
        model = build_model(small_config("adaptive")).eval()
        compiled = CompiledModel(model, dtype="float32")
        out = compiled.infer(random_batch(rng))
        with pytest.raises(GradientError):
            compiled.backward(np.zeros_like(out, dtype=np.float64))

    def test_parameter_update_invalidates_cast_cache(self):
        # load_state_dict rebinds parameter arrays; the float32 leaf
        # cache must notice and re-cast instead of serving stale casts.
        rng = np.random.default_rng(2)
        model = build_model(small_config("adaptive")).eval()
        compiled = CompiledModel(model, dtype="float32")
        batch = random_batch(rng)
        before = compiled.infer(batch).copy()
        state = {
            key: value * 1.5 for key, value in model.state_dict().items()
        }
        model.load_state_dict(state)
        after = compiled.infer(batch)
        assert not np.array_equal(before, after)
        np.testing.assert_allclose(
            after.astype(np.float64), model(batch).data, atol=FLOAT32_ATOL
        )


class TestSignatureCache:
    def test_signature_tracks_shape_mode_and_dtype(self):
        rng = np.random.default_rng(13)
        batch = random_batch(rng)
        base = batch_signature(batch, False, np.dtype(np.float64))
        assert base == batch_signature(batch, False, np.dtype(np.float64))
        assert base != batch_signature(batch, True, np.dtype(np.float64))
        assert base != batch_signature(batch, False, np.dtype(np.float32))
        other = random_batch(rng, sizes=(3, 5, 2, 7))
        assert base != batch_signature(other, False, np.dtype(np.float64))

    def test_shape_change_recaptures_and_both_entries_replay(self):
        rng = np.random.default_rng(17)
        model = build_model(small_config("sort_weighted")).eval()
        compiled = CompiledModel(model)
        small, large = random_batch(rng), random_batch(rng, sizes=(4, 4, 4))
        compiled.forward(small)
        compiled.forward(large)  # different boundaries -> new capture
        assert compiled.stats()["captures"] == 2
        for batch in (random_batch(rng), random_batch(rng, sizes=(4, 4, 4))):
            assert np.array_equal(compiled.forward(batch), model(batch).data)  # repro: allow[float-equality] — bit-exactness is the contract under test
        assert compiled.stats()["replays"] == 2

    def test_lru_eviction_is_bounded_and_recaptures(self):
        rng = np.random.default_rng(19)
        model = build_model(small_config("adaptive")).eval()
        compiled = CompiledModel(model, max_entries=1)
        a, b = random_batch(rng), random_batch(rng, sizes=(4, 4, 4))
        compiled.forward(a)
        compiled.forward(b)   # evicts a's tape
        compiled.forward(a)   # re-captures, still correct
        stats = compiled.stats()
        assert stats["entries"] == 1
        assert stats["captures"] == 3 and stats["evictions"] == 2
        assert np.array_equal(compiled.forward(a), model(a).data)  # repro: allow[float-equality] — bit-exactness is the contract under test

    def test_rejects_bad_configuration(self):
        model = build_model(small_config("adaptive"))
        with pytest.raises(CompilationError):
            CompiledModel(model, dtype="float16")
        with pytest.raises(CompilationError):
            CompiledModel(model, max_entries=0)

    def test_backward_before_forward_raises(self):
        model = build_model(small_config("adaptive"))
        with pytest.raises(GradientError):
            CompiledModel(model).backward(np.zeros((1, NUM_CLASSES)))
