"""Shape/semantic tests for the functional ops."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestConv1d:
    def test_output_shape(self):
        x = Tensor(np.zeros((2, 3, 10)))
        w = Tensor(np.zeros((5, 3, 4)))
        assert F.conv1d(x, w, stride=2).shape == (2, 5, 4)

    def test_known_values(self):
        # Single channel, kernel [1, 1]: a moving sum.
        x = Tensor(np.array([[[1.0, 2.0, 3.0, 4.0]]]))
        w = Tensor(np.array([[[1.0, 1.0]]]))
        np.testing.assert_array_equal(
            F.conv1d(x, w).data, [[[3.0, 5.0, 7.0]]]
        )

    def test_stride_equals_kernel_partitions_signal(self):
        x = Tensor(np.arange(6, dtype=float).reshape(1, 1, 6))
        w = Tensor(np.ones((1, 1, 3)))
        np.testing.assert_array_equal(
            F.conv1d(x, w, stride=3).data, [[[3.0, 12.0]]]
        )

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            F.conv1d(Tensor(np.zeros((1, 2, 5))), Tensor(np.zeros((1, 3, 2))))

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            F.conv1d(Tensor(np.zeros((1, 1, 3))), Tensor(np.zeros((1, 1, 5))))

    def test_wrong_rank(self):
        with pytest.raises(ShapeError):
            F.conv1d(Tensor(np.zeros((3, 5))), Tensor(np.zeros((1, 1, 2))))


class TestConv2d:
    def test_output_shape_with_padding_and_stride(self):
        x = Tensor(np.zeros((2, 3, 7, 9)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        out = F.conv2d(x, w, stride=(2, 1), padding=1)
        assert out.shape == (2, 4, 4, 9)

    def test_identity_kernel(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        w = Tensor(np.array([[[[1.0]]]]))
        np.testing.assert_array_equal(F.conv2d(x, w).data, x.data)

    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        naive = np.zeros((1, 3, 3, 3))
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    naive[0, f, i, j] = (x[0, :, i:i+3, j:j+3] * w[f]).sum()
        np.testing.assert_allclose(out, naive, atol=1e-12)

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(np.zeros((1, 2, 5, 5))), Tensor(np.zeros((1, 3, 2, 2))))


class TestPooling:
    def test_max_pool2d_values(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2)
        np.testing.assert_array_equal(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_max_pool2d_kernel_too_large(self):
        with pytest.raises(ShapeError):
            F.max_pool2d(Tensor(np.zeros((1, 1, 2, 2))), 3)

    def test_max_pool1d_values(self):
        x = Tensor(np.array([[[1.0, 5.0, 2.0, 8.0]]]))
        np.testing.assert_array_equal(F.max_pool1d(x, 2).data, [[[5.0, 8.0]]])


class TestAdaptiveMaxPool:
    def test_window_bounds_tile_input(self):
        """Property of the PyTorch rule: windows cover [0, n) in order."""
        for input_size in range(1, 20):
            for output_size in range(1, 8):
                previous_end = 0
                for index in range(output_size):
                    start, end = F.adaptive_window_bounds(input_size, output_size, index)
                    assert start < end
                    assert start <= previous_end  # no gaps
                    previous_end = max(previous_end, end)
                assert previous_end == input_size  # full coverage

    def test_figure6_shapes(self):
        """Figure 6: 5x7 and 4x7 inputs both pool to 3x3."""
        for height in (5, 4):
            x = Tensor(np.random.default_rng(0).standard_normal((1, 1, height, 7)))
            assert F.adaptive_max_pool2d(x, (3, 3)).shape == (1, 1, 3, 3)

    def test_output_equal_input_is_identity(self):
        x = Tensor(np.arange(12, dtype=float).reshape(1, 1, 3, 4))
        np.testing.assert_array_equal(
            F.adaptive_max_pool2d(x, (3, 4)).data, x.data
        )

    def test_global_pooling(self):
        x = Tensor(np.arange(12, dtype=float).reshape(1, 1, 3, 4))
        assert F.adaptive_max_pool2d(x, (1, 1)).data.item() == 11.0  # repro: allow[float-equality] — exact by construction

    def test_values_are_window_maxima(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((1, 1, 5, 7))
        out = F.adaptive_max_pool2d(Tensor(data), (3, 3)).data
        for oh in range(3):
            h0, h1 = F.adaptive_window_bounds(5, 3, oh)
            for ow in range(3):
                w0, w1 = F.adaptive_window_bounds(7, 3, ow)
                assert out[0, 0, oh, ow] == data[0, 0, h0:h1, w0:w1].max()


class TestSoftmax:
    def test_log_softmax_normalizes(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]]))
        probs = np.exp(F.log_softmax(x, axis=-1).data)
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_numerical_stability_large_logits(self):
        x = Tensor(np.array([[1e4, 1e4 + 1]]))
        out = F.log_softmax(x, axis=-1).data
        assert np.isfinite(out).all()

    def test_softmax_shift_invariance(self):
        x = np.array([[0.3, -1.2, 2.0]])
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ShapeError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_eval_mode_identity(self):
        x = Tensor(np.ones(5))
        assert F.dropout(x, 0.9, training=False) is x

    def test_inverted_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(100_000))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.02
