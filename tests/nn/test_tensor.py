"""Tests for the autograd Tensor: op semantics and graph mechanics."""

import numpy as np
import pytest

from repro.exceptions import GradientError, ShapeError
from repro.nn.tensor import Tensor, concatenate, gather_rows, pad_rows, stack


class TestForwardSemantics:
    def test_arithmetic_matches_numpy(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_array_equal((a + b).data, a.data + b.data)
        np.testing.assert_array_equal((a - b).data, a.data - b.data)
        np.testing.assert_array_equal((a * b).data, a.data * b.data)
        np.testing.assert_array_equal((a / b).data, a.data / b.data)
        np.testing.assert_array_equal((-a).data, -a.data)
        np.testing.assert_array_equal((a ** 2).data, a.data ** 2)

    def test_scalar_broadcasting(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_array_equal((a + 1).data, [2.0, 3.0])
        np.testing.assert_array_equal((2 * a).data, [2.0, 4.0])
        np.testing.assert_array_equal((1 - a).data, [0.0, -1.0])
        np.testing.assert_array_equal((2 / a).data, [2.0, 1.0])

    def test_matmul(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4))
        np.testing.assert_array_equal((a @ b).data, a.data @ b.data)

    def test_reductions(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0  # repro: allow[float-equality] — exact by construction
        assert a.mean().item() == 2.5  # repro: allow[float-equality] — exact by construction
        np.testing.assert_array_equal(a.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_array_equal(a.max(axis=1).data, [2.0, 4.0])

    def test_nonlinearities(self):
        x = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(x.relu().data, [0.0, 0.0, 2.0])
        np.testing.assert_allclose(x.tanh().data, np.tanh(x.data))
        np.testing.assert_allclose(x.sigmoid().data, 1 / (1 + np.exp(-x.data)))

    def test_reshape_transpose_getitem(self):
        x = Tensor(np.arange(6, dtype=float))
        assert x.reshape(2, 3).shape == (2, 3)
        assert x.reshape(2, 3).T.shape == (3, 2)
        np.testing.assert_array_equal(x[2:4].data, [2.0, 3.0])


class TestBackwardMechanics:
    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b * b).requires_grad

    def test_backward_scalar_only_without_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_on_no_grad_tensor(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor([3.0], requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 3).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad_fills_in_place(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        buffer = x.grad
        x.zero_grad()
        # The array survives (tape replays hold references to it) and
        # is zero-filled rather than dropped.
        assert x.grad is buffer
        np.testing.assert_array_equal(x.grad, [0.0])

    def test_zero_grad_without_gradient_is_noop(self):
        x = Tensor([1.0], requires_grad=True)
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # x used via two paths that rejoin: grads must sum once each.
        x = Tensor([2.0], requires_grad=True)
        a = x * 3
        b = x * 4
        (a + b).backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_deep_chain_does_not_recurse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1
        y.backward()  # iterative topo-sort: must not hit recursion limit
        np.testing.assert_allclose(x.grad, [1.0])

    def test_broadcast_grad_unbroadcast(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        bias = Tensor(np.zeros(2), requires_grad=True)
        (x + bias).sum().backward()
        assert bias.grad.shape == (2,)
        np.testing.assert_allclose(bias.grad, [3.0, 3.0])

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad


class TestMultiParentOps:
    def test_concatenate_forward(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((1, 2)))
        out = concatenate([a, b], axis=0)
        assert out.shape == (3, 2)

    def test_concatenate_backward_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ShapeError):
            concatenate([], axis=0)

    def test_stack(self):
        rows = [Tensor([1.0, 2.0], requires_grad=True) for _ in range(3)]
        out = stack(rows, axis=0)
        assert out.shape == (3, 2)
        out.sum().backward()
        for row in rows:
            np.testing.assert_allclose(row.grad, [1.0, 1.0])

    def test_gather_rows(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        out = gather_rows(x, np.array([2, 0, 2]))
        np.testing.assert_array_equal(out.data, [[4, 5], [0, 1], [4, 5]])
        out.sum().backward()
        # Row 2 gathered twice -> gradient 2; row 1 never -> 0.
        np.testing.assert_allclose(x.grad, [[1, 1], [0, 0], [2, 2]])

    def test_gather_rows_requires_2d(self):
        with pytest.raises(ShapeError):
            gather_rows(Tensor(np.zeros(3)), np.array([0]))

    def test_pad_rows(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = pad_rows(x, 5)
        assert out.shape == (5, 3)
        np.testing.assert_array_equal(out.data[2:], 0.0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_pad_rows_noop_when_exact(self):
        x = Tensor(np.ones((2, 3)))
        assert pad_rows(x, 2) is x

    def test_pad_rows_cannot_shrink(self):
        with pytest.raises(ShapeError):
            pad_rows(Tensor(np.ones((4, 2))), 2)
