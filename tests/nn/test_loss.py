"""Tests for the loss functions (Equation 5)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import functional as F
from repro.nn.loss import cross_entropy, nll_loss
from repro.nn.tensor import Tensor


class TestNllLoss:
    def test_perfect_prediction_is_zero(self):
        log_probs = Tensor(np.log(np.array([[1.0 - 1e-12, 1e-12]])))
        loss = nll_loss(log_probs, np.array([0]))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_uniform_prediction_is_log_c(self):
        c = 4
        log_probs = Tensor(np.full((3, c), np.log(1.0 / c)))
        loss = nll_loss(log_probs, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(c))

    def test_matches_manual_formula(self):
        """Equation (5): mean over samples of -log p_{i, y_i}."""
        probs = np.array([[0.7, 0.3], [0.2, 0.8], [0.5, 0.5]])
        targets = np.array([0, 1, 1])
        loss = nll_loss(Tensor(np.log(probs)), targets)
        expected = -np.mean(np.log(probs[np.arange(3), targets]))
        assert loss.item() == pytest.approx(expected)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            nll_loss(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ShapeError):
            nll_loss(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ShapeError):
            nll_loss(Tensor(np.zeros((2, 3))), np.array([0, 5]))

    def test_gradient_flows(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        loss = nll_loss(F.log_softmax(logits, axis=-1), np.array([0, 2]))
        loss.backward()
        assert logits.grad is not None
        # Softmax CE gradient: (p - onehot) / N.
        expected = (np.full((2, 3), 1 / 3) - np.eye(3)[[0, 2]]) / 2
        np.testing.assert_allclose(logits.grad, expected, atol=1e-12)


class TestCrossEntropy:
    def test_equals_nll_of_log_softmax(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((4, 5))
        targets = np.array([0, 1, 2, 3])
        a = cross_entropy(Tensor(logits), targets).item()
        b = nll_loss(F.log_softmax(Tensor(logits), axis=-1), targets).item()
        assert a == pytest.approx(b)

    def test_decreases_with_confidence_in_truth(self):
        targets = np.array([0])
        weak = cross_entropy(Tensor(np.array([[1.0, 0.0]])), targets).item()
        strong = cross_entropy(Tensor(np.array([[5.0, 0.0]])), targets).item()
        assert strong < weak
