"""Tests for the two-pass CFG builder (Algorithms 1+2)."""

import pytest

from repro.cfg.builder import CfgBuilder, build_cfg_from_text
from repro.exceptions import CfgConstructionError
from repro.asm.program import Program

from tests.conftest import SAMPLE_ASM, SAMPLE_BLOCK_STARTS, SAMPLE_EDGES


class TestSampleProgram:
    """The hand-written fixture with fully known ground truth."""

    def test_block_starts(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        assert [b.start_address for b in cfg.blocks()] == SAMPLE_BLOCK_STARTS

    def test_edges(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        assert set(cfg.edges()) == SAMPLE_EDGES

    def test_block_instruction_counts(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        counts = {b.start_address: len(b) for b in cfg.blocks()}
        assert counts == {
            0x401000: 4,  # push, mov, cmp, jz
            0x401009: 2,  # add, jmp
            0x40100E: 1,  # xor (unreachable)
            0x401012: 1,  # sub
            0x401015: 2,  # mov, retn
        }

    def test_every_instruction_in_exactly_one_block(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        addresses = [
            inst.address for block in cfg.blocks() for inst in block.instructions
        ]
        assert len(addresses) == len(set(addresses)) == 10

    def test_jmp_has_no_fall_through_edge(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        # Block at 0x401009 ends in jmp; must not connect to 0x40100E.
        assert (0x401009, 0x40100E) not in set(cfg.edges())


class TestEdgeCases:
    def test_empty_program_rejected(self):
        with pytest.raises(CfgConstructionError):
            CfgBuilder().build(Program())

    def test_single_instruction_program(self):
        cfg = build_cfg_from_text(".text:00401000 retn\n")
        assert cfg.num_vertices == 1
        assert cfg.num_edges == 0

    def test_straight_line_is_one_block(self):
        text = (
            ".text:00401000 push ebp\n"
            ".text:00401001 mov eax, ebx\n"
            ".text:00401002 retn\n"
        )
        cfg = build_cfg_from_text(text)
        assert cfg.num_vertices == 1
        assert len(cfg.entry_block()) == 3

    def test_self_loop(self):
        text = (
            "loc_401000:\n"
            ".text:00401000 dec eax\n"
            ".text:00401001 jnz loc_401000\n"
            ".text:00401002 retn\n"
        )
        cfg = build_cfg_from_text(text)
        edges = set(cfg.edges())
        assert (0x401000, 0x401000) in edges
        assert (0x401000, 0x401002) in edges

    def test_backward_loop(self):
        text = (
            ".text:00401000 xor ecx, ecx\n"
            "loc_401002:\n"
            ".text:00401002 inc ecx\n"
            ".text:00401003 cmp ecx, 0xA\n"
            ".text:00401006 jl loc_401002\n"
            ".text:00401008 retn\n"
        )
        cfg = build_cfg_from_text(text)
        starts = [b.start_address for b in cfg.blocks()]
        assert starts == [0x401000, 0x401002, 0x401008]
        assert (0x401002, 0x401002) in set(cfg.edges())

    def test_branch_to_external_address_dropped(self):
        # Jump to an address beyond the program: placeholder block is
        # created then pruned, leaving no dangling edge.
        text = (
            ".text:00401000 jmp loc_500000\n"
            ".text:00401002 retn\n"
        )
        cfg = build_cfg_from_text(text)
        assert all(b.start_address < 0x500000 for b in cfg.blocks())

    def test_call_creates_interprocedural_edge(self):
        text = (
            ".text:00401000 call sub_401010\n"
            ".text:00401005 retn\n"
            ".text:00401010 mov eax, 0x1\n"
            ".text:00401013 retn\n"
        )
        cfg = build_cfg_from_text(text)
        edges = set(cfg.edges())
        assert (0x401000, 0x401010) in edges
        assert (0x401000, 0x401005) in edges  # resumption fall-through

    def test_branch_into_middle_of_existing_run_splits_block(self):
        # A backward jump into the middle of a straight-line run must
        # split that run at the target.
        text = (
            ".text:00401000 mov eax, 0x1\n"
            ".text:00401003 add eax, 0x1\n"
            ".text:00401006 cmp eax, 0x5\n"
            ".text:00401009 jl loc_401003\n"
            ".text:0040100B retn\n"
        )
        cfg = build_cfg_from_text(text)
        starts = [b.start_address for b in cfg.blocks()]
        assert 0x401003 in starts
        assert (0x401000, 0x401003) in set(cfg.edges())

    def test_named_cfg(self):
        cfg = build_cfg_from_text(".text:00401000 retn\n", name="sample")
        assert cfg.name == "sample"


class TestInvariants:
    def test_no_empty_blocks_in_output(self, tiny_mskcfg):
        # Every CFG built by the full pipeline is free of empty blocks.
        for acfg in tiny_mskcfg.acfgs[:10]:
            assert acfg.num_vertices > 0

    def test_blocks_are_address_disjoint(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        spans = []
        for block in cfg.blocks():
            spans.append((block.start_address, block.end_address))
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2
