"""Tests for CFG graph metrics and DOT export."""

from repro.cfg.builder import build_cfg_from_text
from repro.cfg.metrics import compute_cfg_metrics, to_dot

from tests.conftest import SAMPLE_ASM

LOOP_ASM = """
.text:00401000 xor ecx, ecx
loc_401002:
.text:00401002 inc ecx
.text:00401003 cmp ecx, 0xA
.text:00401006 jl loc_401002
.text:00401008 retn
"""


class TestMetrics:
    def test_sample_counts(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        metrics = compute_cfg_metrics(cfg)
        assert metrics.num_vertices == 5
        assert metrics.num_edges == 5
        assert metrics.num_instructions == 10
        assert metrics.max_out_degree == 2
        assert 0 < metrics.density < 1

    def test_cyclomatic_complexity_formula(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        metrics = compute_cfg_metrics(cfg)
        # E - N + 2P with E=5, N=5, P=1 (one weak component).
        assert metrics.num_components == 1
        assert metrics.cyclomatic_complexity == 5 - 5 + 2

    def test_loop_detection(self):
        cfg = build_cfg_from_text(LOOP_ASM)
        metrics = compute_cfg_metrics(cfg)
        assert metrics.num_back_edges >= 1
        assert metrics.num_nontrivial_sccs == 1

    def test_straight_line_has_no_loops(self):
        cfg = build_cfg_from_text(
            ".text:00401000 mov eax, 0x1\n.text:00401003 retn\n"
        )
        metrics = compute_cfg_metrics(cfg)
        assert metrics.num_back_edges == 0
        assert metrics.num_nontrivial_sccs == 0
        assert metrics.depth == 0

    def test_depth_of_chain(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        # Entry -> 401012 -> 401015: depth 2 from entry.
        assert compute_cfg_metrics(cfg).depth == 2

    def test_as_dict_roundtrip(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        data = compute_cfg_metrics(cfg).as_dict()
        assert data["num_vertices"] == 5


class TestDotExport:
    def test_structure(self):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="sample")
        dot = to_dot(cfg)
        assert dot.startswith('digraph "sample"')
        assert dot.count(" -> ") == cfg.num_edges
        for block in cfg.blocks():
            assert f'"{block.start_address:#x}"' in dot

    def test_instruction_labels(self):
        cfg = build_cfg_from_text(LOOP_ASM)
        dot = to_dot(cfg, include_instructions=True)
        assert "inc ecx" in dot
        assert "jl " in dot
