"""Property-based tests of CFG construction invariants.

These run the full front end over randomly generated family programs and
check the structural invariants any correct two-pass construction must
satisfy, regardless of input program shape.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.isa import ControlFlowKind
from repro.cfg.builder import build_cfg_from_text
from repro.datasets.synthetic_asm import FamilyProfile, generate_family_listing

PROFILE = FamilyProfile(
    name="prop",
    junk_probability=0.25,
    dispatch_probability=0.25,
    loop_probability=0.3,
    data_blocks=(0, 2),
)


def build(seed):
    return build_cfg_from_text(generate_family_listing(PROFILE, seed=seed))


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_control_transfers_only_at_block_exits(seed):
    """Mid-block instructions never branch: the defining CFG property."""
    cfg = build(seed)
    for block in cfg.blocks():
        for inst in block.instructions[:-1]:
            assert inst.flow_kind in (
                ControlFlowKind.SEQUENTIAL,
                ControlFlowKind.CALL,  # calls return: they may sit mid-block
            ), f"{inst} found mid-block"


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_blocks_partition_the_instructions(seed):
    """Every instruction lives in exactly one block."""
    cfg = build(seed)
    addresses = [
        inst.address for block in cfg.blocks() for inst in block.instructions
    ]
    assert len(addresses) == len(set(addresses))


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_blocks_are_contiguous_address_runs(seed):
    """Instructions inside a block are consecutive in address order."""
    cfg = build(seed)
    for block in cfg.blocks():
        instruction_addresses = [i.address for i in block.instructions]
        assert instruction_addresses == sorted(instruction_addresses)
        assert instruction_addresses[0] == block.start_address


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_return_blocks_have_no_successors(seed):
    """A block ending in ret has no outgoing edges."""
    cfg = build(seed)
    for block in cfg.blocks():
        if block.last_instruction.flow_kind is ControlFlowKind.RETURN:
            assert cfg.out_degree(block) == 0


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_propagation_operator_row_stochastic(seed):
    """Every generated graph yields a valid D̂^-1 Â."""
    from repro.features.acfg import ACFG

    cfg = build(seed)
    acfg = ACFG.from_cfg(cfg)
    propagation = acfg.propagation_operator()
    np.testing.assert_allclose(
        propagation.sum(axis=1), np.ones(acfg.num_vertices), atol=1e-12
    )
    assert (propagation >= 0).all()
