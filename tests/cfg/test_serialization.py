"""Tests for CFG/ACFG serialization round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg_from_text
from repro.cfg.serialization import (
    acfg_from_text,
    acfg_to_text,
    cfg_from_dict,
    cfg_to_dict,
    load_cfg,
    save_cfg,
)
from repro.exceptions import SerializationError

from tests.conftest import SAMPLE_ASM, SAMPLE_EDGES


class TestJsonRoundTrip:
    def test_structure_preserved(self):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="sample")
        restored = cfg_from_dict(cfg_to_dict(cfg))
        assert restored.name == "sample"
        assert restored.num_vertices == cfg.num_vertices
        assert set(restored.edges()) == SAMPLE_EDGES

    def test_instructions_preserved(self):
        cfg = build_cfg_from_text(SAMPLE_ASM)
        restored = cfg_from_dict(cfg_to_dict(cfg))
        original = cfg.entry_block().instructions
        round_tripped = restored.entry_block().instructions
        assert [i.mnemonic for i in original] == [i.mnemonic for i in round_tripped]
        assert [i.operands for i in original] == [i.operands for i in round_tripped]

    def test_file_roundtrip(self, tmp_path):
        cfg = build_cfg_from_text(SAMPLE_ASM, name="sample")
        path = str(tmp_path / "sample.json")
        save_cfg(cfg, path)
        restored = load_cfg(path)
        assert set(restored.edges()) == set(cfg.edges())

    def test_bad_version_rejected(self):
        with pytest.raises(SerializationError):
            cfg_from_dict({"version": 999, "blocks": [], "edges": []})

    def test_dangling_edge_rejected(self):
        data = cfg_to_dict(build_cfg_from_text(SAMPLE_ASM))
        data["edges"].append([0xDEAD, 0xBEEF])
        with pytest.raises(SerializationError):
            cfg_from_dict(data)

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_cfg(str(path))


class TestAcfgTextFormat:
    def test_roundtrip(self):
        adjacency = np.array([[0, 1, 0], [0, 0, 1], [1, 0, 0]], dtype=float)
        attributes = np.array([[1.5, 2.0], [0.0, -3.25], [4.0, 0.5]])
        text = acfg_to_text(adjacency, attributes, label="Ramnit")
        adj2, attr2, label = acfg_from_text(text)
        np.testing.assert_array_equal(adj2, adjacency)
        np.testing.assert_array_equal(attr2, attributes)
        assert label == "Ramnit"

    def test_roundtrip_without_label(self):
        adjacency = np.zeros((2, 2))
        attributes = np.ones((2, 3))
        _, _, label = acfg_from_text(acfg_to_text(adjacency, attributes))
        assert label is None

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SerializationError):
            acfg_to_text(np.zeros((2, 3)), np.ones((2, 2)))

    def test_empty_record_rejected(self):
        with pytest.raises(SerializationError):
            acfg_from_text("")

    def test_truncated_record_rejected(self):
        with pytest.raises(SerializationError):
            acfg_from_text("3 2\n1.0 2.0\n")

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(SerializationError):
            acfg_from_text("1 1\n1.0\n0 5\n")

    @given(
        n=st.integers(min_value=1, max_value=6),
        c=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n, c, seed):
        """Property: any generated (A, X) pair survives the text format."""
        rng = np.random.default_rng(seed)
        adjacency = (rng.random((n, n)) < 0.4).astype(float)
        attributes = np.round(rng.standard_normal((n, c)), 6)
        adj2, attr2, _ = acfg_from_text(acfg_to_text(adjacency, attributes))
        np.testing.assert_array_equal(adj2, adjacency)
        np.testing.assert_allclose(attr2, attributes)
