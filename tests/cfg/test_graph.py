"""Tests for the ControlFlowGraph data structure and its matrix views."""

import numpy as np
import pytest

from repro.asm.instruction import Instruction
from repro.cfg.basic_block import BasicBlock
from repro.cfg.graph import ControlFlowGraph
from repro.exceptions import CfgConstructionError


def block(addr, n_insts=1):
    b = BasicBlock(start_address=addr)
    for i in range(n_insts):
        b.append(Instruction(address=addr + i, mnemonic="nop", size=1))
    return b


def diamond():
    """b0 -> b1, b0 -> b2, b1 -> b3, b2 -> b3."""
    graph = ControlFlowGraph(name="diamond")
    blocks = [graph.add_block(block(0x10 * (i + 1))) for i in range(4)]
    graph.add_edge(blocks[0], blocks[1])
    graph.add_edge(blocks[0], blocks[2])
    graph.add_edge(blocks[1], blocks[3])
    graph.add_edge(blocks[2], blocks[3])
    return graph, blocks


class TestGraphStructure:
    def test_counts(self):
        graph, _ = diamond()
        assert graph.num_vertices == 4
        assert graph.num_edges == 4
        assert len(graph) == 4

    def test_duplicate_block_rejected(self):
        graph = ControlFlowGraph()
        graph.add_block(block(0x10))
        with pytest.raises(CfgConstructionError):
            graph.add_block(block(0x10))

    def test_edge_endpoints_must_exist(self):
        graph = ControlFlowGraph()
        inside = graph.add_block(block(0x10))
        outside = block(0x20)
        with pytest.raises(CfgConstructionError):
            graph.add_edge(inside, outside)
        with pytest.raises(CfgConstructionError):
            graph.add_edge(outside, inside)

    def test_parallel_edges_collapse(self):
        graph = ControlFlowGraph()
        a = graph.add_block(block(0x10))
        b = graph.add_block(block(0x20))
        graph.add_edge(a, b)
        graph.add_edge(a, b)
        assert graph.num_edges == 1

    def test_blocks_sorted_by_address(self):
        graph = ControlFlowGraph()
        graph.add_block(block(0x30))
        graph.add_block(block(0x10))
        graph.add_block(block(0x20))
        assert [b.start_address for b in graph.blocks()] == [0x10, 0x20, 0x30]

    def test_successors_and_out_degree(self):
        graph, blocks = diamond()
        succ = graph.successors(blocks[0])
        assert [s.start_address for s in succ] == [0x20, 0x30]
        assert graph.out_degree(blocks[0]) == 2
        assert graph.out_degree(blocks[3]) == 0

    def test_entry_block(self):
        graph, blocks = diamond()
        assert graph.entry_block() is blocks[0]
        assert ControlFlowGraph().entry_block() is None

    def test_remove_empty_blocks(self):
        graph = ControlFlowGraph()
        real = graph.add_block(block(0x10))
        empty = graph.add_block(BasicBlock(start_address=0x20))
        graph.add_edge(real, empty)
        graph.remove_empty_blocks()
        assert graph.num_vertices == 1
        assert graph.num_edges == 0


class TestMatrixViews:
    def test_adjacency_matches_edges(self):
        graph, _ = diamond()
        adjacency = graph.adjacency_matrix()
        expected = np.zeros((4, 4))
        expected[0, 1] = expected[0, 2] = expected[1, 3] = expected[2, 3] = 1
        np.testing.assert_array_equal(adjacency, expected)

    def test_adjacency_is_directed(self):
        graph, _ = diamond()
        adjacency = graph.adjacency_matrix()
        assert not np.array_equal(adjacency, adjacency.T)

    def test_augmented_adds_identity(self):
        graph, _ = diamond()
        augmented = graph.augmented_adjacency_matrix()
        np.testing.assert_array_equal(
            augmented, graph.adjacency_matrix() + np.eye(4)
        )

    def test_degree_matrix_row_sums(self):
        graph, _ = diamond()
        degree = graph.augmented_degree_matrix()
        np.testing.assert_array_equal(
            np.diag(degree), graph.augmented_adjacency_matrix().sum(axis=1)
        )
        # Off-diagonal must be zero.
        assert np.count_nonzero(degree - np.diag(np.diag(degree))) == 0

    def test_vertex_index_order(self):
        graph, blocks = diamond()
        index = graph.vertex_index()
        assert index[blocks[0].start_address] == 0
        assert index[blocks[3].start_address] == 3


class TestNetworkxInterop:
    def test_roundtrip_structure(self):
        graph, _ = diamond()
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
        assert nx_graph.nodes[0x10]["num_instructions"] == 1
