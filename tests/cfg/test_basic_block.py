"""Tests for BasicBlock."""

import pytest

from repro.asm.instruction import Instruction
from repro.cfg.basic_block import BasicBlock


class TestBasicBlock:
    def test_empty_block(self):
        block = BasicBlock(start_address=0x10)
        assert block.is_empty
        assert len(block) == 0
        assert block.end_address == 0x10

    def test_append_and_last(self):
        block = BasicBlock(start_address=0x10)
        block.append(Instruction(address=0x10, mnemonic="push", size=1))
        block.append(Instruction(address=0x11, mnemonic="retn", size=2))
        assert len(block) == 2
        assert block.last_instruction.mnemonic == "retn"
        assert block.end_address == 0x13

    def test_last_of_empty_raises(self):
        with pytest.raises(IndexError):
            BasicBlock(start_address=0x10).last_instruction

    def test_hash_by_start_address(self):
        a = BasicBlock(start_address=0x10)
        b = BasicBlock(start_address=0x10)
        assert hash(a) == hash(b)
