"""Unit tests for the deterministic fault-injection harness."""

import pickle

import pytest

from repro.testing.faults import CORRUPT_OUTPUT, FaultKind, FaultPlan


class TestBuild:
    def test_empty_plan(self):
        plan = FaultPlan.build()
        assert plan.fault_for(0) is None
        assert plan.apply(0) is None

    def test_kinds_assigned(self):
        plan = FaultPlan.build(
            raise_on=[1], hang_on=[2], crash_on=[3], corrupt_on=[4]
        )
        assert plan.fault_for(1) is FaultKind.RAISE
        assert plan.fault_for(2) is FaultKind.HANG
        assert plan.fault_for(3) is FaultKind.CRASH
        assert plan.fault_for(4) is FaultKind.CORRUPT
        assert plan.fault_for(5) is None

    def test_duplicate_index_rejected(self):
        with pytest.raises(ValueError, match="two faults"):
            FaultPlan.build(raise_on=[7], crash_on=[7])

    def test_plan_is_picklable(self):
        # Plans cross the process-pool boundary inside WorkerContext.
        plan = FaultPlan.build(hang_on=[1], hang_seconds=5.0, exit_code=42)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert clone.fault_for(1) is FaultKind.HANG

    def test_plan_is_immutable(self):
        plan = FaultPlan.build(raise_on=[1])
        with pytest.raises((AttributeError, TypeError)):
            plan.hang_seconds = 0.0


class TestApply:
    def test_raise_fault(self):
        plan = FaultPlan.build(raise_on=[3])
        with pytest.raises(RuntimeError, match="injected fault"):
            plan.apply(3)

    def test_hang_fault_sleeps_then_raises(self):
        # A short hang window keeps the unit test fast; in real use the
        # parent kills the worker long before the sleep ends.
        plan = FaultPlan.build(hang_on=[0], hang_seconds=0.01)
        with pytest.raises(RuntimeError, match="hang"):
            plan.apply(0)

    def test_corrupt_fault_returns_sentinel(self):
        plan = FaultPlan.build(corrupt_on=[2])
        assert plan.apply(2) is CORRUPT_OUTPUT

    def test_clean_index_is_noop(self):
        plan = FaultPlan.build(raise_on=[1])
        assert plan.apply(0) is None


class TestSentinel:
    def test_sentinel_identity_survives_pickle(self):
        # The sentinel crosses the worker pipe; detection is by type.
        clone = pickle.loads(pickle.dumps(CORRUPT_OUTPUT))
        assert type(clone) is type(CORRUPT_OUTPUT)
