"""Tests for the long-lived request-worker mode (`repro.workers.request`).

The batch-mode pool keeps its existing coverage under
``tests/features/``; these tests pin the request-serving contract the
fleet dispatcher builds on: resolve-by-name entrypoints, readiness
announcements, per-request fault reporting, and respawn-in-place.
"""

import os

import pytest

from repro.exceptions import WorkerError, WorkerStartupError
from repro.workers import RequestWorker, WorkerReply, resolve_entrypoint

ECHO = "tests.serve.test_workers:echo_service"


class _Echo:
    """Request handler used inside worker children."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix

    def __call__(self, payload):
        if payload == "boom":
            raise ValueError("boom requested")
        if payload == "die":
            os._exit(23)
        return f"{self.prefix}{payload}"


def echo_service(prefix: str = ""):
    return _Echo(prefix)


def failing_service():
    raise RuntimeError("refusing to initialize")


NOT_CALLABLE = "not a factory"


class TestResolveEntrypoint:
    def test_resolves_module_colon_function(self):
        factory = resolve_entrypoint(ECHO)
        assert factory("x-")("hello") == "x-hello"

    def test_rejects_malformed_spec(self):
        with pytest.raises(WorkerError, match="module:function"):
            resolve_entrypoint("no-colon-here")

    def test_rejects_missing_attribute(self):
        with pytest.raises(WorkerError, match="no attribute"):
            resolve_entrypoint("tests.serve.test_workers:nonexistent")

    def test_rejects_non_callable(self):
        with pytest.raises(WorkerError, match="not callable"):
            resolve_entrypoint("tests.serve.test_workers:NOT_CALLABLE")


class TestRequestWorker:
    def test_serves_requests_until_stopped(self):
        worker = RequestWorker("echo", ECHO, {"prefix": ">"})
        worker.start(wait_ready=30.0)
        try:
            assert worker.ready and worker.alive
            worker.send(1, "a")
            worker.send(2, "b")
            replies = {}
            for _ in range(2):
                reply = WorkerReply.from_message(worker.conn.recv())
                replies[reply.request_id] = reply
            assert replies[1].ok and replies[1].value == ">a"
            assert replies[2].ok and replies[2].value == ">b"
        finally:
            exitcode = worker.stop()
        assert exitcode == 0  # sentinel produced a clean exit

    def test_handler_exception_is_a_reply_not_a_death(self):
        worker = RequestWorker("echo", ECHO, {})
        worker.start(wait_ready=30.0)
        try:
            worker.send(1, "boom")
            reply = WorkerReply.from_message(worker.conn.recv())
            assert not reply.ok
            assert "boom requested" in reply.value
            # The replica survived and keeps serving.
            worker.send(2, "next")
            reply = WorkerReply.from_message(worker.conn.recv())
            assert reply.ok and reply.value == "next"
        finally:
            worker.stop()

    def test_init_failure_raises_startup_error(self):
        worker = RequestWorker(
            "doomed", "tests.serve.test_workers:failing_service", {}
        )
        with pytest.raises(WorkerStartupError, match="refusing to initialize"):
            worker.start(wait_ready=30.0)
        assert not worker.alive

    def test_crash_is_visible_as_pipe_eof(self):
        worker = RequestWorker("echo", ECHO, {})
        worker.start(wait_ready=30.0)
        try:
            worker.send(1, "die")
            with pytest.raises((EOFError, OSError)):
                while True:
                    worker.conn.recv()
        finally:
            exitcode = worker.stop(kill=True)
        assert exitcode == 23

    def test_respawn_replaces_in_place_and_counts(self):
        worker = RequestWorker("echo", ECHO, {"prefix": "r"})
        worker.start(wait_ready=30.0)
        try:
            first_pid = worker.pid
            worker.respawn(kill=True, wait_ready=30.0)
            assert worker.respawns == 1
            assert worker.pid != first_pid
            worker.send(9, "back")
            reply = WorkerReply.from_message(worker.conn.recv())
            assert reply.ok and reply.value == "rback"
        finally:
            worker.stop()

    def test_double_start_rejected(self):
        worker = RequestWorker("echo", ECHO, {})
        worker.start(wait_ready=30.0)
        try:
            with pytest.raises(WorkerError, match="already started"):
                worker.start()
        finally:
            worker.stop()

    def test_send_before_start_rejected(self):
        worker = RequestWorker("echo", ECHO, {})
        with pytest.raises(WorkerError, match="not started"):
            worker.send(1, "x")
