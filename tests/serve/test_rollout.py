"""Tests for zero-downtime rollout (`repro.serve.rollout` + fleet)."""

import copy
import threading
import time

import pytest

from repro.exceptions import RegistryError, RolloutError, ServeError
from repro.serve import FleetDispatcher, RolloutConfig, publish
from repro.serve.rollout import (
    DECIDED,
    PROMOTED,
    ROLLED_BACK,
    SHADOWING,
    CanaryReport,
    RolloutController,
    ShadowSampler,
)

from tests.serve.conftest import MODEL_NAME


class TestShadowSampler:
    def test_quarter_fraction_mirrors_every_fourth(self):
        sampler = ShadowSampler(0.25)
        picks = [sampler.select() for _ in range(12)]
        assert picks == [False, False, False, True] * 3

    def test_full_fraction_mirrors_everything(self):
        sampler = ShadowSampler(1.0)
        assert all(sampler.select() for _ in range(5))

    def test_deterministic_replay(self):
        one, two = ShadowSampler(0.3), ShadowSampler(0.3)
        first = [one.select() for _ in range(100)]
        second = [two.select() for _ in range(100)]
        assert first == second
        assert sum(first) == 30


class TestRolloutConfig:
    @pytest.mark.parametrize("kwargs,match", [
        ({"shadow_fraction": 0.0}, "shadow_fraction"),
        ({"shadow_fraction": 1.5}, "shadow_fraction"),
        ({"min_samples": 0}, "min_samples"),
        ({"min_parity": 1.5}, "min_parity"),
        ({"max_latency_ratio": 0.0}, "max_latency_ratio"),
        ({"num_workers": 0}, "num_workers"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(RolloutError, match=match):
            RolloutConfig(version="v2", **kwargs).validate()


class TestCanaryReport:
    def test_parity_counts_failures_against_the_candidate(self):
        report = CanaryReport()
        assert report.parity is None
        report.completed, report.matches = 10, 9
        assert report.parity == pytest.approx(0.9)

    def test_latency_ratio_is_p50_over_p50(self):
        report = CanaryReport()
        report.primary_latencies.extend([0.010, 0.010, 0.010])
        report.shadow_latencies.extend([0.020, 0.020, 0.020])
        assert report.latency_ratio == pytest.approx(2.0)


class TestControllerStateMachine:
    def _controller(self, **kwargs) -> RolloutController:
        defaults = dict(version="v2", min_samples=4, shadow_fraction=1.0)
        defaults.update(kwargs)
        return RolloutController(RolloutConfig(**defaults),
                                 candidate_families=["a", "b"])

    def test_promote_verdict_on_full_parity(self):
        controller = self._controller()
        for _ in range(4):
            controller.record_shadow_result("a", "a", True, 0.01, 0.01)
            verdict = controller.evaluate()
        assert verdict == "promote"
        assert controller.state == DECIDED
        controller.mark_promoted()
        assert controller.state == PROMOTED and not controller.active

    def test_rollback_verdict_on_parity_miss(self):
        controller = self._controller(min_parity=0.99)
        for _ in range(4):
            controller.record_shadow_result("a", "b", True, 0.01, 0.01)
            verdict = controller.evaluate()
        assert verdict == "rollback"
        assert "parity" in controller.reason

    def test_rollback_verdict_on_latency_miss(self):
        controller = self._controller(max_latency_ratio=2.0)
        for _ in range(4):
            controller.record_shadow_result("a", "a", True, 0.01, 0.10)
            verdict = controller.evaluate()
        assert verdict == "rollback"
        assert "latency" in controller.reason

    def test_shadow_losses_count_against_the_candidate(self):
        controller = self._controller(min_parity=0.99)
        for _ in range(3):
            controller.record_shadow_result("a", "a", True, 0.01, 0.01)
        controller.record_shadow_loss()
        assert controller.evaluate() == "rollback"

    def test_verdict_is_delivered_once(self):
        controller = self._controller()
        for _ in range(4):
            controller.record_shadow_result("a", "a", True, 0.01, 0.01)
        assert controller.evaluate() == "promote"
        assert controller.evaluate() is None


# ----------------------------------------------------------------------
# End-to-end: fleet + registry


@pytest.fixture(scope="module")
def rollout_registry(tmp_path_factory, tiny_magic):
    """v1 and v2 share weights (full parity); v3 relabels every family."""
    root = str(tmp_path_factory.mktemp("rollout-registry"))
    publish(tiny_magic, root, MODEL_NAME)  # v1
    publish(tiny_magic, root, MODEL_NAME)  # v2, byte-identical behaviour
    relabeled = copy.deepcopy(tiny_magic)
    # Rotate the family table by one: same weights, but every label now
    # names a different family, so shadow parity is exactly 0.
    names = relabeled.family_names
    relabeled.family_names = names[1:] + names[:1]
    publish(relabeled, root, MODEL_NAME)   # v3, guaranteed parity miss
    return root


def _drive_until(dispatcher, samples, predicate, limit=200):
    """Send traffic until ``predicate()`` or the attempt budget runs out."""
    for i in range(limit):
        name, text = samples[i % len(samples)]
        dispatcher.submit(text, name=f"{name}-{i}", timeout=60.0)
        if predicate():
            return True
        time.sleep(0.02)
    deadline = time.monotonic() + 30.0  # let in-flight shadows land
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


class TestFleetRollout:
    def test_zero_downtime_promotion(self, rollout_registry, listing_samples):
        dispatcher = FleetDispatcher(
            rollout_registry, MODEL_NAME, version="v1",
            num_workers=1, cache_size=0,
        )
        with dispatcher:
            status = dispatcher.start_rollout(RolloutConfig(
                version="v2", shadow_fraction=1.0, min_samples=4,
                max_latency_ratio=1000.0,
            ))
            assert status["state"] == SHADOWING

            # Continuous client traffic across the promotion: every
            # request must come back successful — no drops, no 503s.
            stop_flag = threading.Event()
            outcomes = []

            def client():
                i = 0
                while not stop_flag.is_set():
                    name, text = listing_samples[i % len(listing_samples)]
                    try:
                        result = dispatcher.submit(
                            text, name=name, timeout=60.0
                        )
                        outcomes.append(result.ok)
                    except ServeError:
                        outcomes.append(False)
                    i += 1

            clients = [threading.Thread(target=client) for _ in range(2)]
            for thread in clients:
                thread.start()
            try:
                promoted = _drive_until(
                    dispatcher, listing_samples,
                    lambda: dispatcher.rollout_status()["state"] != SHADOWING,
                )
            finally:
                stop_flag.set()
                for thread in clients:
                    thread.join()
            assert promoted
            final = dispatcher.rollout_status()
            assert final["state"] == PROMOTED
            assert final["report"]["completed"] >= 4
            assert dispatcher.version == "v2"
            assert outcomes and all(outcomes)
            # The fleet keeps serving on the new version.
            name, text = listing_samples[0]
            assert dispatcher.submit(text, name=name, timeout=60.0).ok
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                workers = dispatcher.fleet_snapshot()["workers"]
                if all(w["role"] == "primary" for w in workers):
                    break
                time.sleep(0.05)
            assert all(w["version"] == "v2" for w in workers)

    def test_forced_canary_failure_rolls_back(self, rollout_registry,
                                              listing_samples):
        dispatcher = FleetDispatcher(
            rollout_registry, MODEL_NAME, version="v1",
            num_workers=1, cache_size=0,
        )
        with dispatcher:
            dispatcher.start_rollout(RolloutConfig(
                version="v3", shadow_fraction=1.0, min_samples=4,
                min_parity=0.99, max_latency_ratio=1000.0,
            ))
            rolled_back = _drive_until(
                dispatcher, listing_samples,
                lambda: dispatcher.rollout_status()["state"] != SHADOWING,
            )
            assert rolled_back
            final = dispatcher.rollout_status()
            assert final["state"] == ROLLED_BACK
            assert "parity" in final["reason"]
            # v1 never stopped serving.
            assert dispatcher.version == "v1"
            name, text = listing_samples[0]
            assert dispatcher.submit(text, name=name, timeout=60.0).ok
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                workers = dispatcher.fleet_snapshot()["workers"]
                if all(w["role"] == "primary" for w in workers):
                    break
                time.sleep(0.05)
            assert all(w["version"] == "v1" for w in workers)

    def test_manual_mode_parks_the_verdict(self, rollout_registry,
                                           listing_samples):
        dispatcher = FleetDispatcher(
            rollout_registry, MODEL_NAME, version="v1",
            num_workers=1, cache_size=0,
        )
        with dispatcher:
            dispatcher.start_rollout(RolloutConfig(
                version="v2", shadow_fraction=1.0, min_samples=2,
                max_latency_ratio=1000.0, auto=False,
            ))
            decided = _drive_until(
                dispatcher, listing_samples,
                lambda: dispatcher.rollout_status()["state"] != SHADOWING,
            )
            assert decided
            status = dispatcher.rollout_status()
            assert status["state"] == DECIDED
            assert status["verdict"] == "promote"
            assert dispatcher.version == "v1"  # nothing moved yet
            promoted = dispatcher.promote()
            assert promoted["state"] == PROMOTED
            assert dispatcher.version == "v2"

    def test_rollout_misuse_raises(self, rollout_registry, listing_samples):
        dispatcher = FleetDispatcher(
            rollout_registry, MODEL_NAME, version="v1",
            num_workers=1, cache_size=0,
        )
        with dispatcher:
            with pytest.raises(RolloutError, match="no active rollout"):
                dispatcher.promote()
            with pytest.raises(RolloutError, match="already serving"):
                dispatcher.start_rollout(RolloutConfig(version="v1"))
            with pytest.raises(RegistryError):
                dispatcher.start_rollout(RolloutConfig(version="v99"))
            dispatcher.start_rollout(RolloutConfig(
                version="v2", shadow_fraction=1.0, min_samples=10_000,
                max_latency_ratio=1000.0,
            ))
            with pytest.raises(RolloutError, match="already"):
                dispatcher.start_rollout(RolloutConfig(version="v3"))
            rolled_back = dispatcher.rollback()
            assert rolled_back["state"] == ROLLED_BACK
            assert dispatcher.version == "v1"
