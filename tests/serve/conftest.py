"""Shared fixtures for the serving-layer tests.

Training even a tiny DGCNN dominates test wall-clock, so one fitted
system (and one published registry) is shared session-wide; tests must
treat both as read-only.
"""

import pytest

from repro.core import Magic, ModelConfig
from repro.datasets import generate_mskcfg_dataset, generate_mskcfg_listings
from repro.serve import publish
from repro.train.trainer import TrainingConfig

MODEL_NAME = "mskcfg-tiny"


def train_tiny_magic(seed: int = 0) -> Magic:
    dataset = generate_mskcfg_dataset(total=27, seed=seed,
                                      minimum_per_family=3)
    config = ModelConfig(
        num_attributes=dataset.acfgs[0].num_attributes,
        num_classes=dataset.num_classes,
        pooling="sort_weighted",
        graph_conv_sizes=(8, 8),
        sort_k=6,
        hidden_size=8,
        dropout=0.0,
        seed=seed,
    )
    magic = Magic(config, dataset.family_names)
    magic.fit(
        dataset.acfgs,
        training_config=TrainingConfig(epochs=2, batch_size=8, seed=seed),
    )
    return magic


@pytest.fixture(scope="session")
def tiny_magic():
    """One fitted system for the whole session (do not mutate)."""
    return train_tiny_magic()


@pytest.fixture(scope="session")
def registry_root(tmp_path_factory, tiny_magic):
    """A registry with ``mskcfg-tiny@v1`` published (do not mutate)."""
    root = str(tmp_path_factory.mktemp("registry"))
    publish(tiny_magic, root, MODEL_NAME)
    return root


@pytest.fixture(scope="session")
def listing_samples():
    """``(name, asm_text)`` samples disjoint from the training corpus."""
    listings = generate_mskcfg_listings(total=12, seed=7,
                                        minimum_per_family=1)
    return [(name, text) for name, text, _ in listings]
