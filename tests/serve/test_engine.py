"""InferenceEngine tests: preprocessing parity, cache, fault isolation."""

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.features.pipeline import FailureKind
from repro.serve import InferenceEngine, load
from repro.testing.faults import FaultPlan

from tests.serve.conftest import MODEL_NAME


@pytest.fixture()
def engine(registry_root):
    return InferenceEngine.from_registry(registry_root, MODEL_NAME)


class TestClassification:
    def test_results_align_with_input_order(self, engine, listing_samples):
        results = engine.classify_texts(listing_samples[:4])
        assert [r.name for r in results] == [
            name for name, _ in listing_samples[:4]
        ]
        for result in results:
            assert result.ok
            assert result.family in engine.family_names
            assert result.label == int(result.probabilities.argmax())
            assert result.probabilities.shape == (len(engine.family_names),)

    def test_serve_time_preprocessing_matches_training(
        self, engine, tiny_magic, listing_samples
    ):
        """Regression (satellite): a model trained on standardized
        attributes must see identically standardized attributes when
        served from an archive — engine output equals the train-time
        system's prediction on the same text, bit for bit."""
        name, text = listing_samples[0]
        served = engine.classify_text(text, name=name)
        family, probabilities = tiny_magic.classify_asm(text, name=name)
        assert served.family == family
        np.testing.assert_array_equal(served.probabilities, probabilities)

    def test_scaled_attributes_equal_training_transform(
        self, engine, tiny_magic, listing_samples
    ):
        acfg = tiny_magic.acfg_from_asm(listing_samples[0][1])
        np.testing.assert_array_equal(
            engine.magic.scaler.transform([acfg])[0].attributes,
            tiny_magic.scaler.transform([acfg])[0].attributes,
        )

    def test_unfitted_model_rejected(self, tiny_magic):
        from repro.core import Magic

        unfitted = Magic(tiny_magic.model_config, tiny_magic.family_names)
        with pytest.raises(ServeError, match="unfitted"):
            InferenceEngine(unfitted)


class TestPredictionCache:
    def test_repeat_text_is_served_from_cache(self, engine, listing_samples):
        name, text = listing_samples[0]
        first = engine.classify_text(text, name=name)
        forwards = engine.metrics.snapshot()["latency_ms"]["forward"]["count"]
        second = engine.classify_text(text, name="same-bytes-other-name")
        assert not first.cached and second.cached
        assert second.name == "same-bytes-other-name"
        assert second.family == first.family
        np.testing.assert_array_equal(
            second.probabilities, first.probabilities
        )
        snapshot = engine.metrics.snapshot()
        # The cached request never reached the model.
        assert snapshot["latency_ms"]["forward"]["count"] == forwards
        assert snapshot["cache"]["hits"] == 1

    def test_failures_are_cached_too(self, engine):
        first = engine.classify_text("", name="empty-1")
        second = engine.classify_text("", name="empty-2")
        assert not first.ok and not second.ok
        assert not first.cached and second.cached
        assert second.failure.kind is FailureKind.PARSE
        assert second.failure.name == "empty-2"

    def test_duplicates_within_one_batch_share_one_prediction(
        self, engine, listing_samples
    ):
        name, text = listing_samples[0]
        results = engine.classify_texts(
            [(name, text), ("twin", text), listing_samples[1]]
        )
        assert all(r.ok for r in results)
        assert not results[0].cached and results[1].cached
        assert results[1].name == "twin"
        np.testing.assert_array_equal(
            results[1].probabilities, results[0].probabilities
        )
        snapshot = engine.metrics.snapshot()
        # Only two extractions ran: the duplicate never reached the worker.
        assert snapshot["latency_ms"]["extract"]["count"] == 2
        assert snapshot["cache"]["hits"] == 1

    def test_lru_eviction(self, registry_root, listing_samples):
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=2
        )
        for name, text in listing_samples[:3]:
            engine.classify_text(text, name=name)
        assert engine.cache_info()["entries"] == 2
        # The oldest entry was evicted: re-classifying it misses.
        result = engine.classify_text(
            listing_samples[0][1], name=listing_samples[0][0]
        )
        assert not result.cached

    def test_cache_disabled(self, registry_root, listing_samples):
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        name, text = listing_samples[0]
        engine.classify_text(text, name=name)
        assert not engine.classify_text(text, name=name).cached
        assert engine.cache_info() == {"entries": 0, "bound": 0}


class TestFaultIsolation:
    def test_malformed_sample_does_not_poison_neighbors(
        self, engine, listing_samples
    ):
        samples = [
            listing_samples[0],
            ("broken", ""),
            listing_samples[1],
        ]
        results = engine.classify_texts(samples)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].failure.kind is FailureKind.PARSE
        assert results[1].failure.index == 1
        # The survivors match a clean batch without the bad neighbor.
        clean = engine.classify_texts(
            [listing_samples[2], listing_samples[3]]
        )
        assert all(r.ok for r in clean)

    def test_oversize_guard(self, registry_root, listing_samples):
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, max_vertices=1
        )
        result = engine.classify_text(listing_samples[0][1], name="big")
        assert not result.ok
        assert result.failure.kind is FailureKind.OVERSIZE

    def test_fault_plan_poisoned_index_fails_alone(
        self, registry_root, listing_samples
    ):
        """The PR-3 fault harness drives the serving path too: a worker
        bug on one request surfaces as [unexpected] on that request
        only."""
        engine = InferenceEngine.from_registry(
            registry_root,
            MODEL_NAME,
            fault_plan=FaultPlan.build(raise_on=[1]),
            cache_size=0,
        )
        results = engine.classify_texts(listing_samples[:3])
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].failure.kind is FailureKind.UNEXPECTED
        assert "injected fault" in results[1].failure.detail

    def test_fault_plan_corrupt_output_rejected(
        self, registry_root, listing_samples
    ):
        engine = InferenceEngine.from_registry(
            registry_root,
            MODEL_NAME,
            fault_plan=FaultPlan.build(corrupt_on=[0]),
            cache_size=0,
        )
        results = engine.classify_texts(listing_samples[:2])
        assert not results[0].ok
        assert results[0].failure.kind is FailureKind.UNEXPECTED
        assert "corrupt output" in results[0].failure.detail
        assert results[1].ok

    def test_failure_kinds_counted_in_metrics(self, engine):
        engine.classify_text("", name="bad")
        snapshot = engine.metrics.snapshot()
        assert snapshot["requests"]["failed"] == 1
        assert snapshot["requests"]["failures_by_kind"] == {"parse": 1}


class TestArchiveSources:
    def test_from_registry_records_identity(self, registry_root):
        engine = InferenceEngine.from_registry(registry_root, MODEL_NAME)
        assert engine.model_info.describe() == f"{MODEL_NAME}@v1"

    def test_from_legacy_archive_warns(self, tmp_path, tiny_magic):
        legacy = str(tmp_path / "legacy")
        tiny_magic.save(legacy)
        with pytest.warns(UserWarning, match="legacy model archive"):
            engine = InferenceEngine.from_archive(legacy)
        assert not engine.model_info.verified

    def test_loaded_engine_equals_original_system(
        self, registry_root, tiny_magic, listing_samples
    ):
        loaded = load(registry_root, MODEL_NAME)
        engine = InferenceEngine(loaded.magic, model_info=loaded.info)
        texts = listing_samples[:5]
        served = engine.classify_texts(texts)
        acfgs = [tiny_magic.acfg_from_asm(t, name=n) for n, t in texts]
        direct = tiny_magic.predict_proba(acfgs)
        for result, row in zip(served, direct):
            assert result.label == int(row.argmax())
            np.testing.assert_array_equal(result.probabilities, row)


class TestCompiledServing:
    def test_compiled_output_equals_eager_engine(
        self, registry_root, listing_samples
    ):
        # cache_size=0 so the second pass exercises a tape replay (and
        # the scaled-ACFG + collator memos) instead of the result cache.
        compiled = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        eager = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0, compiled=False
        )
        for _ in range(2):
            for expected, actual in zip(
                eager.classify_texts(listing_samples[:4]),
                compiled.classify_texts(listing_samples[:4]),
            ):
                assert actual.family == expected.family
                np.testing.assert_array_equal(
                    actual.probabilities, expected.probabilities
                )
        stats = compiled.compile_stats()
        assert stats["captures"] >= 1 and stats["replays"] >= 1
        assert eager.compile_stats() is None

    def test_repeat_collations_hit_shared_memo(
        self, registry_root, listing_samples
    ):
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        engine.classify_texts(listing_samples[:3])
        before = engine.collator_stats()
        assert before["misses"] >= 1
        # Same texts -> same cached scaled ACFG objects -> identity-keyed
        # collator memo hit; no new merged operators are built.
        engine.classify_texts(listing_samples[:3])
        after = engine.collator_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_float32_dtype_close_to_float64(
        self, registry_root, listing_samples
    ):
        reference = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, compiled=False
        )
        fast = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, infer_dtype="float32"
        )
        for expected, actual in zip(
            reference.classify_texts(listing_samples[:4]),
            fast.classify_texts(listing_samples[:4]),
        ):
            # Probabilities leave the boundary as float64 either way.
            assert actual.probabilities.dtype == np.float64
            np.testing.assert_allclose(
                actual.probabilities, expected.probabilities, atol=1e-4
            )
            assert actual.family == expected.family

    def test_invalid_dtype_combinations_rejected(self, registry_root):
        with pytest.raises(ServeError, match="infer_dtype"):
            InferenceEngine.from_registry(
                registry_root, MODEL_NAME, infer_dtype="float16"
            )
        with pytest.raises(ServeError, match="compiled tape only"):
            InferenceEngine.from_registry(
                registry_root, MODEL_NAME,
                compiled=False, infer_dtype="float32",
            )
