"""Tests for the opt-in score margin in classification responses.

The margin (top-1 minus top-2 probability) is the online proxy for
attack surface: the adversarial attacks in :mod:`repro.adv` flip
low-margin samples first, so operators watch it to spot drifting or
near-boundary traffic.  It stays behind a flag to keep the default
response schema unchanged.
"""

import numpy as np
import pytest

from repro.serve import InferenceEngine
from repro.serve.engine import ClassificationResult
from repro.serve.http import _result_payload

from tests.serve.conftest import MODEL_NAME
from tests.serve.test_http import request, running_server


def result_with(probabilities):
    probs = np.asarray(probabilities, dtype=np.float64)
    label = int(probs.argmax())
    return ClassificationResult(
        name="s", family=f"f{label}", label=label, probabilities=probs
    )


class TestMarginProperty:
    def test_top1_minus_top2(self):
        assert result_with([0.7, 0.2, 0.1]).margin == pytest.approx(0.5)

    def test_degenerate_cases(self):
        assert ClassificationResult(name="s").margin == pytest.approx(0.0)
        assert result_with([1.0]).margin == pytest.approx(0.0)

    def test_tied_top2_is_zero(self):
        assert result_with([0.4, 0.4, 0.2]).margin == pytest.approx(0.0)


class TestPayloadGating:
    def test_margin_absent_by_default(self):
        status, payload = _result_payload(result_with([0.6, 0.3, 0.1]))
        assert status == 200
        assert "margin" not in payload

    def test_margin_present_when_enabled(self):
        status, payload = _result_payload(
            result_with([0.6, 0.3, 0.1]), include_margin=True
        )
        assert status == 200
        assert payload["margin"] == np.float64(0.3)


class TestEndToEnd:
    def test_include_margin_threads_through_classify(
        self, registry_root, listing_samples
    ):
        name, text = listing_samples[0]
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        with running_server(engine, include_margin=True) as server:
            status, payload = request(
                server, "POST", "/classify",
                payload={"name": name, "asm": text},
            )
        assert status == 200
        probs = sorted(payload["probabilities"])
        assert payload["margin"] == probs[-1] - probs[-2]

    def test_margin_off_by_default_over_http(
        self, registry_root, listing_samples
    ):
        name, text = listing_samples[0]
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        with running_server(engine) as server:
            status, payload = request(
                server, "POST", "/classify",
                payload={"name": name, "asm": text},
            )
        assert status == 200
        assert "margin" not in payload
