"""Tests for the multi-process serving fleet (`repro.serve.fleet`)."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.exceptions import FleetError, ServeError, WorkerStartupError
from repro.serve import FleetDispatcher, InferenceEngine
from repro.testing.faults import FaultPlan

from tests.serve.conftest import MODEL_NAME


@pytest.fixture(scope="module")
def fleet(registry_root):
    """One 2-worker fleet shared by the read-only routing tests."""
    dispatcher = FleetDispatcher(
        registry_root, MODEL_NAME, num_workers=2,
        batch_timeout=60.0, cache_size=0,
    )
    with dispatcher:
        yield dispatcher


def _hammer(dispatcher, samples, count, results, errors):
    for i in range(count):
        name, text = samples[i % len(samples)]
        try:
            results.append(dispatcher.submit(text, name=name, timeout=60.0))
        except ServeError as exc:  # collected, not raised: thread context
            errors.append(exc)


class TestRouting:
    def test_concurrent_traffic_spreads_over_workers(
        self, fleet, listing_samples
    ):
        results, errors = [], []
        threads = [
            threading.Thread(
                target=_hammer,
                args=(fleet, listing_samples, 2, results, errors),
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 16 and all(r.ok for r in results)
        workers = fleet.fleet_snapshot()["workers"]
        assert len(workers) == 2
        assert sum(w["served"] for w in workers) >= 16
        assert all(w["served"] > 0 for w in workers)

    def test_bit_for_bit_parity_with_single_process_engine(
        self, fleet, registry_root, listing_samples
    ):
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        for name, text in listing_samples:
            # Sequential submits make singleton batches on both paths, so
            # the forwards are shape-identical and must agree to the bit.
            expected = engine.classify_text(text, name=name)
            result = fleet.submit(text, name=name, timeout=60.0)
            assert result.ok and expected.ok
            assert result.family == expected.family
            assert result.label == expected.label
            np.testing.assert_array_equal(
                result.probabilities, expected.probabilities
            )

    def test_bad_listing_fails_alone_with_structured_kind(self, fleet):
        result = fleet.submit("", name="empty")
        assert not result.ok
        assert result.failure.kind.value == "parse"

    def test_metrics_snapshot_carries_fleet_section(self, fleet):
        snapshot = fleet.metrics_snapshot()
        assert "requests" in snapshot  # the ServeMetrics half
        section = snapshot["fleet"]
        assert section["model"] == f"{MODEL_NAME}@v1"
        assert {w["state"] for w in section["workers"]} <= {
            "starting", "ready", "failed"
        }
        for worker in section["workers"]:
            assert set(worker) >= {
                "pid", "role", "state", "busy", "served", "batches",
                "respawns", "retries",
            }

    def test_health_surface(self, fleet):
        assert fleet.describe_model() == f"{MODEL_NAME}@v1"
        assert fleet.batching_info()["max_batch_size"] == fleet.max_batch_size
        assert fleet.pending_count == 0


class TestSupervision:
    def test_killed_worker_respawns_and_requests_survive(
        self, registry_root, listing_samples
    ):
        dispatcher = FleetDispatcher(
            registry_root, MODEL_NAME, num_workers=2,
            batch_timeout=60.0, cache_size=0,
        )
        with dispatcher:
            results, errors = [], []
            threads = [
                threading.Thread(
                    target=_hammer,
                    args=(dispatcher, listing_samples, 6, results, errors),
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            victim = dispatcher.fleet_snapshot()["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            for thread in threads:
                thread.join()
            assert not errors
            assert len(results) == 24
            # The kill cost nobody an answer: at worst a retry, and the
            # in-flight batch is retried once on a live replica.
            assert all(r.ok for r in results)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                workers = dispatcher.fleet_snapshot()["workers"]
                if sum(w["respawns"] for w in workers) >= 1:
                    break
                time.sleep(0.05)
            assert sum(w["respawns"] for w in workers) >= 1
            assert all(w["state"] != "failed" for w in workers)

    def test_compiled_replay_survives_respawn(
        self, registry_root, listing_samples
    ):
        """A respawned replica re-captures its tape and keeps answering
        bit-identically (the compiled cache is per-process state, so a
        SIGKILL must cost nothing but one re-capture per batch shape)."""
        dispatcher = FleetDispatcher(
            registry_root, MODEL_NAME, num_workers=1,
            batch_timeout=60.0, cache_size=0,  # compiled=True is the default
        )
        name, text = listing_samples[0]
        with dispatcher:
            # Two sequential singleton submits: capture, then replay.
            before = [
                dispatcher.submit(text, name=name, timeout=60.0)
                for _ in range(2)
            ]
            victim = dispatcher.fleet_snapshot()["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                workers = dispatcher.fleet_snapshot()["workers"]
                if (workers[0]["respawns"] >= 1
                        and workers[0]["state"] == "ready"):
                    break
                time.sleep(0.05)
            after = [
                dispatcher.submit(text, name=name, timeout=60.0)
                for _ in range(2)
            ]
        assert dispatcher.fleet_snapshot  # dispatcher exited cleanly
        for result in before + after:
            assert result.ok
        for result in after:
            assert result.family == before[0].family
            np.testing.assert_array_equal(
                result.probabilities, before[0].probabilities
            )

    def test_float32_without_compiled_fails_fast_in_parent(
        self, registry_root
    ):
        with pytest.raises(FleetError, match="compiled tape only"):
            FleetDispatcher(
                registry_root, MODEL_NAME, num_workers=1,
                compiled=False, infer_dtype="float32",
            )

    def test_hung_worker_is_killed_at_the_batch_deadline(
        self, registry_root, listing_samples
    ):
        plan = FaultPlan.build(hang_on=[0], hang_seconds=3600.0)
        dispatcher = FleetDispatcher(
            registry_root, MODEL_NAME, num_workers=1,
            batch_timeout=1.0, cache_size=0, fault_plan=plan,
        )
        name, text = listing_samples[0]
        with dispatcher:
            result = dispatcher.submit(text, name=name, timeout=30.0)
            assert not result.ok
            assert result.failure.kind.value == "timeout"
            assert "batch deadline" in result.failure.detail
            workers = dispatcher.fleet_snapshot()["workers"]
            # Killed at the deadline on the first try and on the retry.
            assert workers[0]["respawns"] >= 2

    def test_startup_failure_is_loud(self, registry_root):
        dispatcher = FleetDispatcher(
            registry_root, MODEL_NAME, num_workers=1,
            cache_size=-1,  # rejected by the engine inside the child
        )
        with pytest.raises(WorkerStartupError, match="cache_size"):
            dispatcher.start()
        assert not dispatcher.running


class TestLifecycle:
    def test_zero_workers_is_rejected(self, registry_root):
        with pytest.raises(FleetError, match="num_workers"):
            FleetDispatcher(registry_root, MODEL_NAME, num_workers=0)

    def test_submit_before_start_raises(self, registry_root):
        dispatcher = FleetDispatcher(registry_root, MODEL_NAME, num_workers=1)
        with pytest.raises(ServeError, match="not accepting"):
            dispatcher.submit("irrelevant", name="x")

    def test_stop_drains_queued_requests(self, registry_root,
                                         listing_samples):
        dispatcher = FleetDispatcher(
            registry_root, MODEL_NAME, num_workers=1, cache_size=0,
        )
        with dispatcher:
            results, errors = [], []
            threads = [
                threading.Thread(
                    target=_hammer,
                    args=(dispatcher, listing_samples, 2, results, errors),
                )
                for _ in range(3)
            ]
            for thread in threads:
                thread.start()
        # __exit__ ran stop(): accepting ended, but queued work finished.
        for thread in threads:
            thread.join()
        accepted = len(results) + len(errors)
        assert accepted == 6
        assert all(r.ok for r in results)
        # Any error must be the not-accepting refusal, never a dropped
        # in-flight request.
        assert all("not accepting" in str(e) for e in errors)

    def test_double_start_rejected(self, fleet):
        with pytest.raises(FleetError, match="already running"):
            fleet.start()
