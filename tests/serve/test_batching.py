"""MicroBatcher tests: coalescing, equivalence, isolation, lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.features.pipeline import FailureKind
from repro.serve import InferenceEngine, MicroBatcher

from tests.serve.conftest import MODEL_NAME


@pytest.fixture()
def engine(registry_root):
    return InferenceEngine.from_registry(
        registry_root, MODEL_NAME, cache_size=0
    )


def submit_concurrently(batcher, samples):
    """Fire one submitting thread per sample; returns results in order."""
    results = [None] * len(samples)
    threads = []

    def worker(index, name, text):
        results[index] = batcher.submit(text, name=name)

    for index, (name, text) in enumerate(samples):
        thread = threading.Thread(target=worker, args=(index, name, text))
        threads.append(thread)
        thread.start()
    for thread in threads:
        thread.join()
    return results


class TestCoalescing:
    def test_concurrent_requests_share_a_forward(
        self, engine, listing_samples
    ):
        samples = listing_samples[:6]
        with MicroBatcher(engine, max_batch_size=6,
                          max_wait_ms=500.0) as batcher:
            results = submit_concurrently(batcher, samples)
        assert all(result.ok for result in results)
        histogram = engine.metrics.snapshot()["batches"]["size_histogram"]
        # Every request was served...
        assert sum(
            int(size) * count for size, count in histogram.items()
        ) == len(samples)
        # ...and at least some genuinely coalesced (the 500 ms window is
        # enormous next to thread start-up skew, so in practice this is
        # one batch of 6).
        assert max(int(size) for size in histogram) >= 2

    def test_results_match_direct_engine_batch(
        self, registry_root, listing_samples
    ):
        samples = listing_samples[:5]
        direct_engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        direct = direct_engine.classify_texts(samples)

        batched_engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        with MicroBatcher(batched_engine, max_batch_size=5,
                          max_wait_ms=500.0) as batcher:
            served = submit_concurrently(batcher, samples)

        assert [r.label for r in served] == [r.label for r in direct]
        assert [r.family for r in served] == [r.family for r in direct]

    def test_zero_wait_degenerates_to_single_requests(
        self, engine, listing_samples
    ):
        with MicroBatcher(engine, max_batch_size=8,
                          max_wait_ms=0.0) as batcher:
            # Sequential submits: each request is alone in the queue
            # when its window (of zero) closes.
            for name, text in listing_samples[:3]:
                assert batcher.submit(text, name=name).ok
        histogram = engine.metrics.snapshot()["batches"]["size_histogram"]
        assert histogram == {"1": 3}

    def test_window_closes_early_when_no_more_waiters_can_arrive(
        self, engine, listing_samples
    ):
        """A lone request must not sit out the full wait window.

        The queue already holds every submitted-but-unanswered request,
        so the collector closes the window the moment ``len(queue) >=
        waiters`` — waiting longer cannot grow the batch.  With a 400 ms
        window, sequential submits would cost >= 400 ms each without the
        early close; with it, p50 latency stays far below the window.
        """
        samples = listing_samples[:5]
        latencies = []
        with MicroBatcher(engine, max_batch_size=8,
                          max_wait_ms=400.0) as batcher:
            for name, text in samples:
                started = time.perf_counter()
                assert batcher.submit(text, name=name).ok
                latencies.append(time.perf_counter() - started)
        p50 = sorted(latencies)[len(latencies) // 2]
        assert p50 < 0.2, (
            f"p50 latency {p50:.3f}s suggests lone requests waited out "
            "the 400 ms batching window"
        )
        # Early close did not fabricate batches: each request was alone.
        histogram = engine.metrics.snapshot()["batches"]["size_histogram"]
        assert histogram == {"1": len(samples)}

    def test_pending_count_tracks_unanswered_requests(
        self, engine, listing_samples
    ):
        with MicroBatcher(engine, max_wait_ms=0.0) as batcher:
            assert batcher.pending_count == 0
            assert batcher.submit(listing_samples[0][1], name="one").ok
            assert batcher.pending_count == 0

    def test_max_batch_size_caps_coalescing(self, engine, listing_samples):
        samples = listing_samples[:6]
        with MicroBatcher(engine, max_batch_size=2,
                          max_wait_ms=200.0) as batcher:
            results = submit_concurrently(batcher, samples)
        assert all(result.ok for result in results)
        histogram = engine.metrics.snapshot()["batches"]["size_histogram"]
        assert max(int(size) for size in histogram) <= 2


class TestFaultIsolation:
    def test_bad_sample_fails_alone_in_a_shared_batch(
        self, engine, listing_samples
    ):
        samples = [listing_samples[0], ("broken", "  "), listing_samples[1]]
        with MicroBatcher(engine, max_batch_size=3,
                          max_wait_ms=500.0) as batcher:
            results = submit_concurrently(batcher, samples)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert results[1].failure.kind is FailureKind.PARSE
        probabilities = np.stack(
            [results[0].probabilities, results[2].probabilities]
        )
        assert np.isfinite(probabilities).all()

    def test_engine_crash_fails_the_batch_not_the_service(
        self, engine, listing_samples, monkeypatch
    ):
        calls = {"count": 0}
        real = engine.classify_texts

        def flaky(samples):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("engine exploded")
            return real(samples)

        monkeypatch.setattr(engine, "classify_texts", flaky)
        with MicroBatcher(engine, max_batch_size=1,
                          max_wait_ms=0.0) as batcher:
            first = batcher.submit(listing_samples[0][1], name="victim")
            second = batcher.submit(listing_samples[1][1], name="survivor")
        assert not first.ok
        assert first.failure.kind is FailureKind.UNEXPECTED
        assert "engine exploded" in first.failure.detail
        assert second.ok


class TestLifecycle:
    def test_submit_before_start_raises(self, engine):
        batcher = MicroBatcher(engine)
        with pytest.raises(ServeError, match="not running"):
            batcher.submit("text", name="early")

    def test_submit_after_stop_raises(self, engine):
        batcher = MicroBatcher(engine).start()
        batcher.stop()
        with pytest.raises(ServeError, match="not running"):
            batcher.submit("text", name="late")

    def test_double_start_rejected(self, engine):
        batcher = MicroBatcher(engine).start()
        try:
            with pytest.raises(ServeError, match="already running"):
                batcher.start()
        finally:
            batcher.stop()

    def test_stop_is_idempotent(self, engine):
        batcher = MicroBatcher(engine).start()
        batcher.stop()
        batcher.stop()

    def test_invalid_knobs_rejected(self, engine):
        with pytest.raises(ServeError, match="max_batch_size"):
            MicroBatcher(engine, max_batch_size=0)
        with pytest.raises(ServeError, match="max_wait_ms"):
            MicroBatcher(engine, max_wait_ms=-1.0)

    def test_queue_timeout_raises(self, engine, listing_samples,
                                  monkeypatch):
        def stall(samples):
            import time

            time.sleep(1.0)
            raise AssertionError("should not be reached in this test")

        monkeypatch.setattr(engine, "classify_texts", stall)
        with MicroBatcher(engine, max_wait_ms=0.0) as batcher:
            with pytest.raises(ServeError, match="timed out"):
                batcher.submit(
                    listing_samples[0][1], name="slow", timeout=0.05
                )
