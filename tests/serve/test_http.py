"""HTTP front-end tests, including the end-to-end acceptance path:
train tiny model -> publish archive -> start server -> concurrent
/classify requests coalesce (visible in the /metrics batch-size
histogram) and return the same labels as direct prediction, bit for
bit."""

import contextlib
import http.client
import json
import threading
import time

import pytest

from repro.serve import (
    ClassificationServer,
    FleetDispatcher,
    InferenceEngine,
    build_fleet_server,
    build_server,
)

from tests.serve.conftest import MODEL_NAME


@contextlib.contextmanager
def running_server(engine, **kwargs):
    server = build_server(engine, **kwargs)
    with server:
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            pass
    thread.join(timeout=5)


def request(server, method, path, payload=None, raw_body=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.port, timeout=30
    )
    try:
        if raw_body is not None:
            body = raw_body
        elif payload is not None:
            body = json.dumps(payload).encode("utf-8")
        else:
            body = None
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


@pytest.fixture()
def engine(registry_root):
    return InferenceEngine.from_registry(registry_root, MODEL_NAME)


class TestEndToEnd:
    def test_concurrent_classify_coalesces_and_matches_direct_prediction(
        self, registry_root, tiny_magic, listing_samples
    ):
        """The PR acceptance path, end to end over real sockets."""
        samples = listing_samples[:6]
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        with running_server(
            engine, max_batch_size=6, max_wait_ms=500.0
        ) as server:
            statuses = [None] * len(samples)
            payloads = [None] * len(samples)

            def classify(index, name, text):
                statuses[index], payloads[index] = request(
                    server, "POST", "/classify",
                    payload={"name": name, "asm": text},
                )

            threads = [
                threading.Thread(target=classify, args=(i, name, text))
                for i, (name, text) in enumerate(samples)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            _, metrics = request(server, "GET", "/metrics")

        assert statuses == [200] * len(samples)

        # Coalescing is observable: at least one multi-request batch.
        histogram = metrics["batches"]["size_histogram"]
        assert max(int(size) for size in histogram) >= 2
        assert sum(
            int(size) * count for size, count in histogram.items()
        ) == len(samples)

        # Served labels equal direct prediction through the training-time
        # system, bit for bit (labels are integers; no tolerance needed).
        acfgs = [
            tiny_magic.acfg_from_asm(text, name=name)
            for name, text in samples
        ]
        direct = tiny_magic.predict_proba(acfgs)
        for payload, row, (name, _) in zip(payloads, direct, samples):
            assert payload["name"] == name
            assert payload["label"] == int(row.argmax())
            assert payload["family"] == tiny_magic.family_names[
                int(row.argmax())
            ]

    def test_repeat_request_is_served_from_cache(
        self, engine, listing_samples
    ):
        name, text = listing_samples[0]
        body = {"name": name, "asm": text}
        with running_server(engine, max_wait_ms=0.0) as server:
            _, first = request(server, "POST", "/classify", payload=body)
            _, second = request(server, "POST", "/classify", payload=body)
            _, metrics = request(server, "GET", "/metrics")
        assert not first["cached"]
        assert second["cached"]
        assert second["probabilities"] == first["probabilities"]
        assert metrics["cache"]["hits"] == 1


class TestEndpoints:
    def test_healthz(self, engine):
        with running_server(
            engine, max_batch_size=4, max_wait_ms=2.0
        ) as server:
            status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model"] == f"{MODEL_NAME}@v1"
        assert payload["families"] == engine.family_names
        assert payload["uptime_seconds"] >= 0
        assert payload["batching"] == {
            "max_batch_size": 4, "max_wait_ms": 2.0,
        }

    def test_metrics_shape(self, engine, listing_samples):
        name, text = listing_samples[0]
        with running_server(engine, max_wait_ms=0.0) as server:
            request(
                server, "POST", "/classify",
                payload={"name": name, "asm": text},
            )
            status, payload = request(server, "GET", "/metrics")
        assert status == 200
        assert payload["requests"]["total"] == 1
        assert payload["requests"]["ok"] == 1
        assert payload["batches"]["size_histogram"] == {"1": 1}
        for stage in ("extract", "forward", "request"):
            assert payload["latency_ms"][stage]["count"] >= 1
            assert payload["latency_ms"][stage]["p50"] >= 0

    def test_malformed_sample_returns_422_with_kind(self, engine):
        with running_server(engine, max_wait_ms=0.0) as server:
            status, payload = request(
                server, "POST", "/classify",
                payload={"name": "junk", "asm": "not a listing at all"},
            )
        assert status == 422
        assert payload["name"] == "junk"
        assert payload["error"]["kind"] == "parse"
        assert payload["error"]["detail"]

    def test_bad_requests_return_400(self, engine):
        with running_server(engine, max_wait_ms=0.0) as server:
            status, payload = request(
                server, "POST", "/classify", raw_body=b"{not json"
            )
            assert status == 400
            assert "JSON" in payload["error"]

            status, payload = request(
                server, "POST", "/classify", payload={"name": "x"}
            )
            assert status == 400
            assert "asm" in payload["error"]

            status, payload = request(
                server, "POST", "/classify",
                payload={"asm": "mov eax, 1", "name": 7},
            )
            assert status == 400
            assert "name" in payload["error"]

            status, _ = request(server, "POST", "/classify", raw_body=b"[]")
            assert status == 400

    def test_unknown_paths_return_404(self, engine):
        with running_server(engine) as server:
            assert request(server, "GET", "/nope")[0] == 404
            assert request(
                server, "POST", "/nope", payload={"asm": "x"}
            )[0] == 404

    def test_rollout_endpoints_refuse_single_process_mode(self, engine):
        with running_server(engine, max_wait_ms=0.0) as server:
            for method, path in (
                ("GET", "/rollout/status"),
                ("POST", "/rollout/start"),
                ("POST", "/rollout/promote"),
                ("POST", "/rollout/rollback"),
            ):
                payload = {"version": "v2"} if path.endswith("start") else {}
                status, body = request(server, method, path, payload=payload)
                assert status == 409
                assert "--workers" in body["error"]


class TestRestartRebind:
    def test_allow_reuse_address_is_pinned_on(self):
        # The restart-rebind contract lives on the class so every server
        # (CLI, tests, fleet mode) gets it — not a per-instance flag.
        assert ClassificationServer.allow_reuse_address is True

    def test_port_rebinds_immediately_after_shutdown(
        self, engine, listing_samples
    ):
        name, text = listing_samples[0]
        with running_server(engine, max_wait_ms=0.0) as server:
            port = server.port
            # Serve one real request so a connection socket actually
            # cycled through this port before the restart.
            status, _ = request(
                server, "POST", "/classify",
                payload={"name": name, "asm": text},
            )
            assert status == 200
        # Rebinding the exact port right after close must not raise
        # EADDRINUSE while the old sockets sit in TIME_WAIT.
        with running_server(engine, port=port, max_wait_ms=0.0) as reborn:
            assert reborn.port == port
            assert request(reborn, "GET", "/healthz")[0] == 200


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_requests(
        self, registry_root, listing_samples
    ):
        """Requests accepted before shutdown still complete with 200."""
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0
        )
        samples = listing_samples[:6]
        # max_batch_size=1 serializes the forwards, so most requests are
        # still queued inside the batcher when shutdown begins.
        server = build_server(engine, max_batch_size=1, max_wait_ms=0.0)
        statuses = [None] * len(samples)

        def classify(index, name, text):
            statuses[index], _ = request(
                server, "POST", "/classify",
                payload={"name": name, "asm": text},
            )

        clients = [
            threading.Thread(target=classify, args=(i, name, text))
            for i, (name, text) in enumerate(samples)
        ]
        with server:
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            for client in clients:
                client.start()
            # Wait until every request is either answered or sitting in
            # the backend queue — i.e. all were accepted — then shut
            # down while some are genuinely in flight.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                answered = sum(s is not None for s in statuses)
                if answered + server.backend.pending_count >= len(samples):
                    break
                time.sleep(0.01)
        thread.join(timeout=10)
        for client in clients:
            client.join(timeout=30)
        # The ordered drain means nobody saw a torn connection or a 503.
        assert statuses == [200] * len(samples)


@contextlib.contextmanager
def running_fleet_server(registry_root, **kwargs):
    dispatcher = FleetDispatcher(
        registry_root, MODEL_NAME, num_workers=2, cache_size=0,
    )
    server = build_fleet_server(dispatcher, **kwargs)
    with server:
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
    thread.join(timeout=5)


class TestFleetHTTP:
    def test_fleet_surface_over_http(self, registry_root, listing_samples):
        name, text = listing_samples[0]
        with running_fleet_server(registry_root) as server:
            status, health = request(server, "GET", "/healthz")
            assert status == 200
            assert health["model"] == f"{MODEL_NAME}@v1"
            assert health["workers"] == 2

            status, payload = request(
                server, "POST", "/classify",
                payload={"name": name, "asm": text},
            )
            assert status == 200
            assert payload["family"] in health["families"]

            status, metrics = request(server, "GET", "/metrics")
            assert status == 200
            assert metrics["fleet"]["model"] == f"{MODEL_NAME}@v1"
            assert len(metrics["fleet"]["workers"]) == 2

            # No rollout started yet.
            status, body = request(server, "GET", "/rollout/status")
            assert status == 404

            # Unknown candidate version: refused, fleet unharmed.
            status, body = request(
                server, "POST", "/rollout/start",
                payload={"version": "v99"},
            )
            assert status == 409
            assert "v99" in body["error"]
            assert request(server, "GET", "/healthz")[0] == 200

            # Promote with nothing active: same story.
            status, body = request(server, "POST", "/rollout/promote",
                                   payload={})
            assert status == 409
            assert "no active rollout" in body["error"]
