"""Registry tests: versioning, integrity verification, legacy archives."""

import json
import os

import numpy as np
import pytest

from repro.exceptions import RegistryError
from repro.serve import registry
from repro.serve.registry import (
    list_models,
    list_versions,
    load,
    load_archive,
    publish,
    read_manifest,
    resolve_version,
)

from tests.serve.conftest import MODEL_NAME


def _edit_manifest(archive_path, mutate):
    manifest_path = os.path.join(archive_path, "archive.json")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    mutate(manifest)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)


class TestPublish:
    def test_auto_versioning_and_listing(self, tmp_path, tiny_magic):
        root = str(tmp_path)
        first = publish(tiny_magic, root, "demo")
        second = publish(tiny_magic, root, "demo")
        assert (first.version, second.version) == ("v1", "v2")
        assert list_versions(root, "demo") == ["v1", "v2"]
        assert list_models(root) == ["demo"]

    def test_archive_contents(self, registry_root):
        path = os.path.join(registry_root, MODEL_NAME, "v1")
        assert sorted(os.listdir(path)) == [
            "archive.json", "magic.json", "parameters.npz",
        ]
        with open(os.path.join(path, "archive.json")) as handle:
            manifest = json.load(handle)
        assert manifest["format_version"] == registry.ARCHIVE_FORMAT_VERSION
        assert set(manifest["files"]) == {"parameters.npz", "magic.json"}
        assert manifest["name"] == MODEL_NAME
        assert len(manifest["scaler"]["mean"]) > 0

    def test_explicit_version_and_immutability(self, tmp_path, tiny_magic):
        root = str(tmp_path)
        publish(tiny_magic, root, "demo", version="2026-08-05")
        with pytest.raises(RegistryError, match="immutable"):
            publish(tiny_magic, root, "demo", version="2026-08-05")

    def test_invalid_names_rejected(self, tmp_path, tiny_magic):
        with pytest.raises(RegistryError, match="invalid model name"):
            publish(tiny_magic, str(tmp_path), "../escape")
        with pytest.raises(RegistryError, match="invalid version"):
            publish(tiny_magic, str(tmp_path), "demo", version="a/b")

    def test_unfitted_model_rejected(self, tmp_path, tiny_magic):
        from repro.core import Magic

        unfitted = Magic(tiny_magic.model_config, tiny_magic.family_names)
        with pytest.raises(RegistryError, match="not been fitted"):
            publish(unfitted, str(tmp_path), "demo")


class TestLoad:
    def test_load_latest_round_trips(self, registry_root, tiny_magic):
        loaded = load(registry_root, MODEL_NAME)
        assert loaded.info.version == "v1"
        assert loaded.info.verified
        assert loaded.magic.family_names == tiny_magic.family_names
        for key, value in tiny_magic.model.state_dict().items():
            np.testing.assert_array_equal(
                loaded.magic.model.state_dict()[key], value
            )

    def test_scaler_round_trips_exactly(self, registry_root, tiny_magic):
        """Serve-time preprocessing == train-time preprocessing (bitwise)."""
        loaded = load(registry_root, MODEL_NAME)
        np.testing.assert_array_equal(
            loaded.magic.scaler.mean_, tiny_magic.scaler.mean_
        )
        np.testing.assert_array_equal(
            loaded.magic.scaler.std_, tiny_magic.scaler.std_
        )
        assert loaded.magic.scaler.use_log == tiny_magic.scaler.use_log

    def test_manifest_scaler_matches_weights(self, registry_root, tiny_magic):
        path = os.path.join(registry_root, MODEL_NAME, "v1")
        with open(os.path.join(path, "archive.json")) as handle:
            manifest = json.load(handle)
        np.testing.assert_array_equal(
            np.array(manifest["scaler"]["mean"]), tiny_magic.scaler.mean_
        )
        np.testing.assert_array_equal(
            np.array(manifest["scaler"]["std"]), tiny_magic.scaler.std_
        )

    def test_unknown_model_or_version(self, registry_root):
        with pytest.raises(RegistryError, match="no published versions"):
            load(registry_root, "nope")
        with pytest.raises(RegistryError, match="not found"):
            load(registry_root, MODEL_NAME, "v99")


class TestIntegrity:
    @pytest.fixture()
    def archive_path(self, tmp_path, tiny_magic):
        info = publish(tiny_magic, str(tmp_path), "victim")
        return info.path

    def test_tampered_weights_rejected(self, archive_path):
        weights = os.path.join(archive_path, "parameters.npz")
        with open(weights, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        with pytest.raises(RegistryError, match="sha256"):
            load_archive(archive_path)

    def test_tampered_metadata_rejected(self, archive_path):
        meta = os.path.join(archive_path, "magic.json")
        with open(meta, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["family_names"] = list(reversed(payload["family_names"]))
        with open(meta, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(RegistryError, match="sha256"):
            load_archive(archive_path)

    def test_family_table_mismatch_rejected(self, archive_path):
        """A manifest describing a *different* model must not serve.

        The files themselves are untouched (checksums pass); only the
        manifest's family table lies — the cross-check must catch it.
        """
        _edit_manifest(
            archive_path,
            lambda m: m.__setitem__(
                "family_names", list(reversed(m["family_names"]))
            ),
        )
        with pytest.raises(RegistryError, match="family table mismatch"):
            load_archive(archive_path)

    def test_scaler_mismatch_rejected(self, archive_path):
        def corrupt(manifest):
            manifest["scaler"]["mean"][0] += 1.0

        _edit_manifest(archive_path, corrupt)
        with pytest.raises(RegistryError, match="scaling parameters"):
            load_archive(archive_path)

    def test_missing_file_rejected(self, archive_path):
        os.remove(os.path.join(archive_path, "parameters.npz"))
        with pytest.raises(RegistryError, match="missing"):
            load_archive(archive_path)

    def test_unsupported_format_version(self, archive_path):
        _edit_manifest(
            archive_path, lambda m: m.__setitem__("format_version", 99)
        )
        with pytest.raises(RegistryError, match="format_version"):
            load_archive(archive_path)


class TestFinalization:
    """Only finalized versions (manifest present) are servable.

    A crashed or in-progress publish leaves a directory without
    ``archive.json`` — the atomic-publish commit mark.  Version
    resolution must never hand such a directory to a serving fleet.
    """

    @pytest.fixture()
    def root_with_partial(self, tmp_path, tiny_magic):
        root = str(tmp_path)
        publish(tiny_magic, root, "demo")  # v1, finalized
        partial = os.path.join(root, "demo", "v2")
        os.makedirs(partial)
        # Weights landed but the manifest (written last) never did.
        with open(os.path.join(partial, "parameters.npz"), "wb") as handle:
            handle.write(b"truncated publish")
        return root

    def test_list_versions_skips_unfinalized(self, root_with_partial):
        assert list_versions(root_with_partial, "demo") == ["v1"]
        assert list_versions(
            root_with_partial, "demo", include_unfinalized=True
        ) == ["v1", "v2"]

    def test_resolve_version_defaults_to_latest_finalized(
        self, root_with_partial
    ):
        assert resolve_version(root_with_partial, "demo") == "v1"
        assert resolve_version(root_with_partial, "demo", "v1") == "v1"

    def test_load_latest_ignores_the_partial_dir(self, root_with_partial):
        assert load(root_with_partial, "demo").info.version == "v1"

    def test_no_finalized_versions_is_loud(self, tmp_path, tiny_magic):
        root = str(tmp_path)
        publish(tiny_magic, root, "demo")
        os.remove(os.path.join(root, "demo", "v1", "archive.json"))
        with pytest.raises(RegistryError, match="no published versions"):
            resolve_version(root, "demo")

    def test_read_manifest_returns_family_table(self, registry_root):
        manifest = read_manifest(registry_root, MODEL_NAME, "v1")
        assert manifest["name"] == MODEL_NAME
        assert len(manifest["family_names"]) > 0


class TestLegacyArchives:
    def test_plain_magic_save_dir_warns_and_loads(self, tmp_path, tiny_magic):
        legacy = str(tmp_path / "legacy-model")
        tiny_magic.save(legacy)
        with pytest.warns(UserWarning, match="legacy model archive"):
            loaded = load_archive(legacy)
        assert not loaded.info.verified
        assert loaded.info.version == "legacy"
        assert loaded.magic.family_names == tiny_magic.family_names
        np.testing.assert_array_equal(
            loaded.magic.scaler.mean_, tiny_magic.scaler.mean_
        )

    def test_republishing_legacy_restores_verification(
        self, tmp_path, tiny_magic
    ):
        legacy = str(tmp_path / "legacy-model")
        tiny_magic.save(legacy)
        with pytest.warns(UserWarning):
            loaded = load_archive(legacy)
        info = publish(loaded.magic, str(tmp_path / "registry"), "rescued")
        assert load_archive(info.path).info.verified
