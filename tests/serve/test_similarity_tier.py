"""The similarity cache tier inside the serving path.

Covers the tier decision table (exact hit / similar hit / miss), the
``similar`` flagging contract (a near-duplicate response is never
presented as exact), the failure rule (cached failures are never served
from the similarity tier), per-tier metrics, and the HTTP payload.
"""

import pytest

from repro.datasets.mskcfg import MSKCFG_PROFILES, generate_mskcfg_sample
from repro.datasets.synthetic_asm import ObfuscationKnobs
from repro.serve import InferenceEngine
from repro.serve.fleet import FleetDispatcher, inference_service

from tests.serve.conftest import MODEL_NAME
from tests.serve.test_http import request, running_server

#: Out-of-training-corpus sample index (conftest trains on 27 samples).
BASE_INDEX = 40


def _sample_pair(family="Ramnit", index=BASE_INDEX):
    """(base listing, junk-code variant listing) of one sample."""
    _, base_text, _ = generate_mskcfg_sample(family, index, seed=0)
    knobs = ObfuscationKnobs(
        junk_probability=min(
            0.95, MSKCFG_PROFILES[family].junk_probability + 0.25
        )
    )
    _, variant_text, _ = generate_mskcfg_sample(
        family, index, seed=0, knobs=knobs
    )
    return base_text, variant_text


@pytest.fixture()
def engine(registry_root):
    return InferenceEngine.from_registry(
        registry_root, MODEL_NAME, similar_threshold=0.45
    )


class TestTierSemantics:
    def test_decision_table(self, engine):
        base_text, variant_text = _sample_pair()

        fresh = engine.classify_text(base_text, "fresh")
        assert not fresh.cached and not fresh.similar
        assert fresh.similarity is None

        exact = engine.classify_text(base_text, "exact-repeat")
        assert exact.cached and not exact.similar

        similar = engine.classify_text(variant_text, "variant")
        assert similar.cached and similar.similar
        assert similar.similarity is not None
        assert similar.similarity >= 0.45
        # The near-duplicate serves the *keeper's* prediction verbatim
        # (bit for bit — no recomputation happened).
        assert similar.label == fresh.label
        assert similar.probabilities.tobytes() == fresh.probabilities.tobytes()

    def test_exact_repeat_of_a_variant_keeps_the_similar_flag(self, engine):
        base_text, variant_text = _sample_pair()
        engine.classify_text(base_text, "base")
        first = engine.classify_text(variant_text, "variant")
        repeat = engine.classify_text(variant_text, "variant-again")
        assert first.similar and repeat.similar
        assert repeat.similarity == first.similarity

    def test_distinct_sample_misses_the_tier(self, engine):
        base_text, _ = _sample_pair("Ramnit")
        other_text, _ = _sample_pair("Lollipop", BASE_INDEX + 1)
        engine.classify_text(base_text, "base")
        other = engine.classify_text(other_text, "distinct")
        assert not other.cached and not other.similar

    def test_describe_marks_similar_responses(self, engine):
        base_text, variant_text = _sample_pair()
        engine.classify_text(base_text, "base")
        result = engine.classify_text(variant_text, "variant")
        assert "(similar " in result.describe()

    def test_failures_are_never_served_from_the_similarity_tier(
        self, engine
    ):
        first = engine.classify_text("no instructions here ###", "bad-a")
        second = engine.classify_text("no instructions here ###!", "bad-b")
        assert not first.ok and not second.ok
        assert not first.similar and not second.similar
        # Both went through their own extraction: two misses, no hits.
        cache = engine.metrics.snapshot()["cache"]
        assert cache["similar_hits"] == 0
        assert cache["misses"] == 2

    def test_tier_off_by_default(self, registry_root):
        plain = InferenceEngine.from_registry(registry_root, MODEL_NAME)
        base_text, variant_text = _sample_pair()
        plain.classify_text(base_text, "base")
        variant = plain.classify_text(variant_text, "variant")
        assert not variant.similar and not variant.cached
        assert "similarity" not in plain.cache_info()

    def test_cache_size_zero_disables_the_tier(self, registry_root):
        engine = InferenceEngine.from_registry(
            registry_root, MODEL_NAME, cache_size=0, similar_threshold=0.45
        )
        base_text, variant_text = _sample_pair()
        engine.classify_text(base_text, "base")
        variant = engine.classify_text(variant_text, "variant")
        assert not variant.similar and not variant.cached
        assert engine.cache_info() == {"entries": 0, "bound": 0}


class TestTierMetrics:
    def test_per_tier_counters_and_histogram(self, engine):
        base_text, variant_text = _sample_pair()
        engine.classify_text(base_text, "base")      # miss
        engine.classify_text(base_text, "repeat")    # exact hit
        engine.classify_text(variant_text, "variant")  # similar hit
        cache = engine.metrics.snapshot()["cache"]
        assert cache["exact_hits"] == 1
        assert cache["similar_hits"] == 1
        assert cache["misses"] == 1
        # Compat: combined hits and hit-rate keep their old meaning.
        assert cache["hits"] == 2
        assert cache["hit_rate"] == pytest.approx(2 / 3)
        assert sum(cache["similarity_histogram"].values()) == 1
        (edge,) = cache["similarity_histogram"]
        assert float(edge) >= 0.45

    def test_fingerprint_stage_latency_is_recorded(self, engine):
        base_text, _ = _sample_pair()
        engine.classify_text(base_text, "base")
        assert "fingerprint" in engine.metrics.snapshot()["latency_ms"]

    def test_cache_info_reports_the_index(self, engine):
        base_text, variant_text = _sample_pair()
        engine.classify_text(base_text, "base")
        engine.classify_text(variant_text, "variant")
        info = engine.cache_info()["similarity"]
        assert info["entries"] == 1
        assert info["threshold"] == pytest.approx(0.45)
        assert info["hits"] == 1


class TestHttpPayload:
    def test_similar_flag_and_similarity_in_classify_responses(
        self, engine
    ):
        base_text, variant_text = _sample_pair()
        with running_server(engine, max_wait_ms=0.0) as server:
            _, fresh = request(
                server, "POST", "/classify",
                payload={"name": "base", "asm": base_text},
            )
            _, similar = request(
                server, "POST", "/classify",
                payload={"name": "variant", "asm": variant_text},
            )
            _, metrics = request(server, "GET", "/metrics")
        assert fresh["similar"] is False
        assert "similarity" not in fresh
        assert similar["similar"] is True
        assert similar["cached"] is True
        assert similar["similarity"] >= 0.45
        assert similar["label"] == fresh["label"]
        assert metrics["cache"]["similar_hits"] == 1


class TestFleetPlumbing:
    def test_dispatcher_forwards_tier_config_to_replicas(
        self, registry_root
    ):
        dispatcher = FleetDispatcher(
            registry_root,
            MODEL_NAME,
            similar_threshold=0.45,
            fingerprint_iterations=2,
        )
        assert dispatcher.similar_threshold == pytest.approx(0.45)
        assert dispatcher.fingerprint_iterations == 2

    def test_inference_service_builds_a_tiered_engine(self, registry_root):
        handler = inference_service(
            registry_root,
            MODEL_NAME,
            version="v1",
            similar_threshold=0.45,
            fingerprint_iterations=2,
        )
        base_text, variant_text = _sample_pair()
        (fresh,) = handler([("base", base_text)])
        (similar,) = handler([("variant", variant_text)])
        assert not fresh.similar
        assert similar.similar
        assert similar.similarity >= 0.45
        info = handler.engine.cache_info()["similarity"]
        assert info["iterations"] == 2
