"""Smoke tests for the example scripts.

Each example must parse, expose a ``main`` callable, and carry a usage
docstring.  (Full runs are exercised manually / in CI with larger time
budgets; the quickstart path is additionally executed end-to-end by the
integration tests.)
"""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTED_EXAMPLES = [
    "quickstart.py",
    "classify_malware_families.py",
    "compare_with_baselines.py",
    "hyperparameter_search.py",
    "inspect_cfg.py",
    "extended_attributes.py",
    "concept_drift.py",
    "call_graph_analysis.py",
    "batched_inference.py",
]


def example_path(name):
    return os.path.join(EXAMPLES_DIR, name)


class TestExampleScripts:
    def test_all_expected_examples_exist(self):
        present = set(os.listdir(EXAMPLES_DIR))
        missing = [e for e in EXPECTED_EXAMPLES if e not in present]
        assert not missing, f"missing examples: {missing}"

    @pytest.mark.parametrize("name", EXPECTED_EXAMPLES)
    def test_example_parses_and_has_main(self, name):
        with open(example_path(name), "r", encoding="utf-8") as handle:
            source = handle.read()
        tree = ast.parse(source, filename=name)
        assert ast.get_docstring(tree), f"{name} lacks a module docstring"
        function_names = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names, f"{name} has no main()"

    @pytest.mark.parametrize("name", EXPECTED_EXAMPLES)
    def test_example_guards_execution(self, name):
        with open(example_path(name), "r", encoding="utf-8") as handle:
            source = handle.read()
        assert 'if __name__ == "__main__":' in source

    @pytest.mark.parametrize("name", EXPECTED_EXAMPLES)
    def test_example_imports_only_public_api(self, name):
        """Examples must demonstrate the public surface, not internals."""
        with open(example_path(name), "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=name)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                assert not node.module.startswith("repro._"), (
                    f"{name} imports private module {node.module}"
                )
