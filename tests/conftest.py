"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_mskcfg_dataset, generate_yancfg_dataset

#: A hand-written listing with fully known CFG structure:
#:
#:   b0 @401000 (push/mov/cmp/jz)    -> b1 (fall-through), b3 (branch)
#:   b1 @401009 (add/jmp)            -> b4 (branch);  no fall-through
#:   b2 @40100E (xor)  [unreachable] -> b3 (fall-through)
#:   b3 @401012 (sub)                -> b4 (fall-through)
#:   b4 @401015 (mov/retn)           -> (exit)
SAMPLE_ASM = """
.text:00401000 push ebp
.text:00401001 mov ebp, esp
.text:00401004 cmp eax, 0x5
.text:00401007 jz loc_401012
.text:00401009 add eax, 0x1
.text:0040100C jmp loc_401015
.text:0040100E xor ebx, ebx
loc_401012:
.text:00401012 sub eax, 0x1
loc_401015:
.text:00401015 mov ecx, eax
.text:00401018 retn
"""

#: Expected block start addresses for SAMPLE_ASM.
SAMPLE_BLOCK_STARTS = [0x401000, 0x401009, 0x40100E, 0x401012, 0x401015]

#: Expected edges (by block start address) for SAMPLE_ASM.
SAMPLE_EDGES = {
    (0x401000, 0x401009),
    (0x401000, 0x401012),
    (0x401009, 0x401015),
    (0x40100E, 0x401012),
    (0x401012, 0x401015),
}


@pytest.fixture
def sample_asm() -> str:
    return SAMPLE_ASM


@pytest.fixture(scope="session")
def tiny_mskcfg():
    """A small but complete synthetic MSKCFG dataset (session-cached)."""
    return generate_mskcfg_dataset(total=45, seed=11)


@pytest.fixture(scope="session")
def tiny_yancfg():
    """A small synthetic YANCFG dataset (session-cached)."""
    return generate_yancfg_dataset(total=52, seed=11)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
