"""Tests for the dataset container and split machinery."""

import numpy as np
import pytest

from repro.datasets.loader import MalwareDataset
from repro.exceptions import DatasetError
from repro.features.acfg import ACFG


def make_dataset(labels, num_classes=3):
    acfgs = [
        ACFG(
            adjacency=np.zeros((2, 2)),
            attributes=np.full((2, 2), float(i)),
            label=label,
            name=f"s{i}",
        )
        for i, label in enumerate(labels)
    ]
    return MalwareDataset(
        acfgs=acfgs, family_names=[f"f{c}" for c in range(num_classes)]
    )


class TestValidation:
    def test_unlabelled_sample_rejected(self):
        acfg = ACFG(adjacency=np.zeros((1, 1)), attributes=np.zeros((1, 1)))
        with pytest.raises(DatasetError):
            MalwareDataset(acfgs=[acfg], family_names=["a", "b"])

    def test_out_of_range_label_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset([0, 5], num_classes=3)


class TestBasics:
    def test_len_getitem(self):
        ds = make_dataset([0, 1, 2])
        assert len(ds) == 3
        assert ds[1].label == 1

    def test_family_counts(self):
        ds = make_dataset([0, 0, 1, 2, 2, 2])
        assert ds.family_counts() == {"f0": 2, "f1": 1, "f2": 3}

    def test_labels_and_sizes(self):
        ds = make_dataset([2, 0])
        np.testing.assert_array_equal(ds.labels(), [2, 0])
        assert ds.graph_sizes() == [2, 2]

    def test_subset(self):
        ds = make_dataset([0, 1, 2])
        sub = ds.subset([2, 0])
        assert len(sub) == 2
        assert {a.label for a in sub.acfgs} == {0, 2}


class TestStratifiedSplit:
    def test_fraction_validated(self):
        ds = make_dataset([0, 1, 2])
        with pytest.raises(DatasetError):
            ds.stratified_split(0.0)
        with pytest.raises(DatasetError):
            ds.stratified_split(1.0)

    def test_partition_is_complete_and_disjoint(self):
        ds = make_dataset([0] * 10 + [1] * 6 + [2] * 4)
        train, test = ds.stratified_split(0.25, seed=1)
        names = sorted(a.name for a in train.acfgs + test.acfgs)
        assert names == sorted(a.name for a in ds.acfgs)
        assert not {a.name for a in train.acfgs} & {a.name for a in test.acfgs}

    def test_proportions_roughly_preserved(self):
        ds = make_dataset([0] * 40 + [1] * 20)
        train, test = ds.stratified_split(0.25, seed=0)
        test_counts = test.family_counts()
        assert test_counts["f0"] == 10
        assert test_counts["f1"] == 5

    def test_singleton_family_stays_in_train(self):
        ds = make_dataset([0] * 8 + [1])
        train, test = ds.stratified_split(0.25, seed=0)
        assert train.family_counts()["f1"] == 1


class TestKFold:
    def test_validates_splits(self):
        ds = make_dataset([0, 1])
        with pytest.raises(DatasetError):
            list(ds.stratified_kfold(n_splits=1))
        with pytest.raises(DatasetError):
            list(ds.stratified_kfold(n_splits=5))

    def test_folds_partition_dataset(self):
        ds = make_dataset([0] * 12 + [1] * 8 + [2] * 5)
        seen = []
        for train_idx, val_idx in ds.stratified_kfold(n_splits=5, seed=3):
            assert not set(train_idx) & set(val_idx)
            assert len(train_idx) + len(val_idx) == len(ds)
            seen.extend(val_idx)
        # Every sample appears in exactly one validation fold.
        assert sorted(seen) == list(range(len(ds)))

    def test_stratification(self):
        ds = make_dataset([0] * 10 + [1] * 5)
        for _, val_idx in ds.stratified_kfold(n_splits=5, seed=0):
            labels = ds.labels()[val_idx]
            assert (labels == 0).sum() == 2
            assert (labels == 1).sum() == 1

    def test_deterministic_for_seed(self):
        ds = make_dataset([0] * 10 + [1] * 10)
        a = list(ds.stratified_kfold(n_splits=5, seed=7))
        b = list(ds.stratified_kfold(n_splits=5, seed=7))
        assert a == b
