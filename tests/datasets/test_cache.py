"""Tests for dataset caching."""

import json
import os

import numpy as np
import pytest

from repro.datasets.cache import load_dataset, save_dataset
from repro.exceptions import DatasetError


class TestCacheRoundTrip:
    def test_roundtrip_preserves_everything(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(tiny_mskcfg, directory)
        restored = load_dataset(directory)

        assert restored.family_names == tiny_mskcfg.family_names
        assert restored.name == tiny_mskcfg.name
        assert len(restored) == len(tiny_mskcfg)
        for original, reloaded in zip(tiny_mskcfg.acfgs, restored.acfgs):
            assert reloaded.label == original.label
            assert reloaded.name == original.name
            np.testing.assert_array_equal(reloaded.adjacency, original.adjacency)
            np.testing.assert_allclose(reloaded.attributes, original.attributes)

    def test_loaded_dataset_trains(self, tiny_mskcfg, tmp_path):
        from repro.core.dgcnn import ModelConfig
        from repro.core.magic import Magic
        from repro.train.trainer import TrainingConfig

        directory = str(tmp_path / "corpus")
        save_dataset(tiny_mskcfg, directory)
        restored = load_dataset(directory)
        magic = Magic(
            ModelConfig(num_attributes=11, num_classes=9,
                        pooling="sort_weighted", graph_conv_sizes=(6, 6),
                        sort_k=4, hidden_size=8, seed=0),
            restored.family_names,
        )
        magic.fit(restored.acfgs,
                  training_config=TrainingConfig(epochs=1, batch_size=16))
        assert magic.predict(restored.acfgs[:3]).shape == (3,)


class TestCacheFailures:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(DatasetError):
            load_dataset(str(tmp_path))

    def test_missing_sample_file(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(tiny_mskcfg, directory)
        os.remove(os.path.join(directory, "000000.acfg"))
        with pytest.raises(DatasetError):
            load_dataset(directory)
