"""Tests for dataset caching."""

import json
import os

import numpy as np
import pytest

from repro.datasets.cache import load_dataset, save_dataset
from repro.datasets.loader import MalwareDataset
from repro.exceptions import DatasetError


def subset(dataset, count):
    return MalwareDataset(
        acfgs=list(dataset.acfgs[:count]),
        family_names=dataset.family_names,
        name=dataset.name,
    )


class TestCacheRoundTrip:
    def test_roundtrip_preserves_everything(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(tiny_mskcfg, directory)
        restored = load_dataset(directory)

        assert restored.family_names == tiny_mskcfg.family_names
        assert restored.name == tiny_mskcfg.name
        assert len(restored) == len(tiny_mskcfg)
        for original, reloaded in zip(tiny_mskcfg.acfgs, restored.acfgs):
            assert reloaded.label == original.label
            assert reloaded.name == original.name
            np.testing.assert_array_equal(reloaded.adjacency, original.adjacency)
            np.testing.assert_allclose(reloaded.attributes, original.attributes)

    def test_loaded_dataset_trains(self, tiny_mskcfg, tmp_path):
        from repro.core.dgcnn import ModelConfig
        from repro.core.magic import Magic
        from repro.train.trainer import TrainingConfig

        directory = str(tmp_path / "corpus")
        save_dataset(tiny_mskcfg, directory)
        restored = load_dataset(directory)
        magic = Magic(
            ModelConfig(num_attributes=11, num_classes=9,
                        pooling="sort_weighted", graph_conv_sizes=(6, 6),
                        sort_k=4, hidden_size=8, seed=0),
            restored.family_names,
        )
        magic.fit(restored.acfgs,
                  training_config=TrainingConfig(epochs=1, batch_size=16))
        assert magic.predict(restored.acfgs[:3]).shape == (3,)


class TestCacheFailures:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError):
            load_dataset(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{nope")
        with pytest.raises(DatasetError):
            load_dataset(str(tmp_path))

    def test_missing_sample_file(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(tiny_mskcfg, directory)
        os.remove(os.path.join(directory, "000000.acfg"))
        with pytest.raises(DatasetError):
            load_dataset(directory)


class TestStaleFileRegression:
    def test_smaller_save_leaves_no_orphans(self, tiny_mskcfg, tmp_path):
        # Regression: saving 5 samples over a 10-sample cache used to
        # leave records 000005-000009 behind, and a later manifest loss
        # or hand edit could resurrect them.
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 10), directory)
        save_dataset(subset(tiny_mskcfg, 5), directory)
        records = [f for f in os.listdir(directory) if f.endswith(".acfg")]
        assert len(records) == 5
        assert len(load_dataset(directory)) == 5

    def test_overwrite_leaves_no_temp_directories(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 4), directory)
        save_dataset(subset(tiny_mskcfg, 2), directory)
        leftovers = [f for f in os.listdir(tmp_path) if f.startswith(".tmp-")]
        assert leftovers == []

    def test_failed_save_preserves_old_cache(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        poisoned = subset(tiny_mskcfg, 2)
        poisoned.acfgs[1] = None  # save will crash mid-staging
        with pytest.raises(AttributeError):
            save_dataset(poisoned, directory)
        assert len(load_dataset(directory)) == 3
        leftovers = [f for f in os.listdir(tmp_path) if f.startswith(".tmp-")]
        assert leftovers == []


class TestIntegrityVerification:
    def test_manifest_carries_version_and_checksums(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        manifest = json.load(open(os.path.join(directory, "manifest.json")))
        assert manifest["format_version"] == 2
        for record in manifest["samples"]:
            assert len(record["sha256"]) == 64

    def test_corrupt_record_named_in_error(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        victim = os.path.join(directory, "000001.acfg")
        with open(victim, "a") as handle:
            handle.write("tampered\n")
        with pytest.raises(DatasetError, match="000001.acfg"):
            load_dataset(directory)

    def test_legacy_manifest_loads_with_warning(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        del manifest["format_version"]
        for record in manifest["samples"]:
            del record["sha256"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.warns(UserWarning, match="legacy"):
            restored = load_dataset(directory)
        assert len(restored) == 3

    def test_unknown_format_version_rejected(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 2), directory)
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["format_version"] = 99
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(DatasetError, match="format_version"):
            load_dataset(directory)


class TestLabelValidation:
    def rewrite_label(self, directory, value):
        manifest_path = os.path.join(directory, "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["samples"][0]["label"] = value
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        return manifest["samples"][0]["name"]

    def test_out_of_range_label_rejected(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        name = self.rewrite_label(directory, len(tiny_mskcfg.family_names))
        with pytest.raises(DatasetError, match=name):
            load_dataset(directory)

    def test_negative_label_rejected(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        self.rewrite_label(directory, -1)
        with pytest.raises(DatasetError, match="label"):
            load_dataset(directory)

    def test_non_integer_label_rejected(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        self.rewrite_label(directory, "2")
        with pytest.raises(DatasetError, match="non-integer"):
            load_dataset(directory)

    def test_boolean_label_rejected(self, tiny_mskcfg, tmp_path):
        directory = str(tmp_path / "corpus")
        save_dataset(subset(tiny_mskcfg, 3), directory)
        self.rewrite_label(directory, True)
        with pytest.raises(DatasetError, match="non-integer"):
            load_dataset(directory)
