"""Tests for the synthetic assembly generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import build_cfg_from_text
from repro.datasets.synthetic_asm import (
    FamilyProfile,
    ProgramGenerator,
    generate_family_listing,
)


def make_generator(seed=0, **overrides):
    profile = FamilyProfile(name="test", **overrides)
    return ProgramGenerator(profile, np.random.default_rng(seed))


class TestGeneration:
    def test_listing_is_parseable_into_nontrivial_cfg(self):
        listing = make_generator().generate_listing()
        cfg = build_cfg_from_text(listing)
        assert cfg.num_vertices >= 3
        assert cfg.num_edges >= 1

    def test_deterministic_for_fixed_seed(self):
        a = generate_family_listing(FamilyProfile(name="x"), seed=7)
        b = generate_family_listing(FamilyProfile(name="x"), seed=7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_family_listing(FamilyProfile(name="x"), seed=1)
        b = generate_family_listing(FamilyProfile(name="x"), seed=2)
        assert a != b

    def test_every_function_ends_with_ret(self):
        ir = make_generator().generate_ir()
        rets = [b for b in ir.blocks if b.terminator[0] == "ret"]
        assert rets, "at least one function must terminate"

    def test_loop_probability_produces_back_edges(self):
        generator = make_generator(
            seed=3, loop_probability=0.9, branch_probability=0.0,
            blocks_per_function=(6, 8), num_functions=(2, 3),
        )
        cfg = build_cfg_from_text(generator.generate_listing())
        back_edges = [(s, d) for s, d in cfg.edges() if d <= s]
        assert back_edges, "high loop probability must create back edges"

    def test_dispatch_fanout_creates_branching(self):
        generator = make_generator(
            seed=5, dispatch_probability=1.0, dispatch_fanout=(4, 6),
            blocks_per_function=(8, 10), num_functions=(2, 2),
            branch_probability=0.0, loop_probability=0.0,
        )
        cfg = build_cfg_from_text(generator.generate_listing())
        # A dispatch ladder yields blocks with 2 successors chained together.
        branching = sum(1 for b in cfg.blocks() if cfg.out_degree(b) >= 2)
        assert branching >= 3

    def test_data_blocks_emit_declarations(self):
        generator = make_generator(seed=1, data_blocks=(2, 3))
        listing = generator.generate_listing()
        assert " db " in listing

    def test_junk_code_opaque_predicates(self):
        generator = make_generator(seed=2, junk_probability=1.0)
        listing = generator.generate_listing()
        assert "xor eax, eax" in listing

    def test_base_address_respected(self):
        listing = make_generator().generate_listing(base_address=0x700000)
        cfg = build_cfg_from_text(listing)
        assert cfg.entry_block().start_address == 0x700000

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_any_seed_yields_valid_cfg(self, seed):
        """Property: generated listings always parse into a valid CFG."""
        listing = generate_family_listing(
            FamilyProfile(name="p", junk_probability=0.3,
                          dispatch_probability=0.3, data_blocks=(0, 2)),
            seed=seed,
        )
        cfg = build_cfg_from_text(listing)
        assert cfg.num_vertices > 0
        # All edges reference existing blocks.
        starts = {b.start_address for b in cfg.blocks()}
        for src, dst in cfg.edges():
            assert src in starts and dst in starts
