"""Tests for the synthetic YANCFG corpus."""

import numpy as np
import pytest

from repro.datasets.yancfg import (
    LABEL_NOISE_PAIRS,
    YANCFG_FAMILIES,
    YANCFG_FAMILY_COUNTS,
    YANCFG_PROFILES,
    family_sample_counts,
    generate_yancfg_dataset,
)
from repro.exceptions import DatasetError


class TestFamilyTable:
    def test_thirteen_families_including_benign(self):
        assert len(YANCFG_FAMILIES) == 13
        assert "Benign" in YANCFG_FAMILIES

    def test_profiles_cover_families(self):
        assert set(YANCFG_PROFILES) == set(YANCFG_FAMILIES)

    def test_hupigon_is_largest(self):
        assert max(YANCFG_FAMILY_COUNTS, key=YANCFG_FAMILY_COUNTS.get) == "Hupigon"

    def test_confusable_pairs_exist(self):
        pairs = {(a, b) for a, b, _ in LABEL_NOISE_PAIRS}
        assert ("Rbot", "Sdbot") in pairs
        assert ("Ldpinch", "Lmir") in pairs


class TestGeneration:
    def test_dataset_structure(self, tiny_yancfg):
        assert tiny_yancfg.num_classes == 13
        assert len(tiny_yancfg) >= 52
        assert all(a.num_attributes == 11 for a in tiny_yancfg.acfgs)

    def test_deterministic(self):
        a = generate_yancfg_dataset(total=26, seed=2)
        b = generate_yancfg_dataset(total=26, seed=2)
        assert [x.label for x in a.acfgs] == [x.label for x in b.acfgs]
        np.testing.assert_array_equal(a.acfgs[0].adjacency, b.acfgs[0].adjacency)

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            generate_yancfg_dataset(total=5)

    def test_label_noise_swaps_within_pairs_only(self):
        clean = generate_yancfg_dataset(total=120, seed=4, label_noise=False)
        noisy = generate_yancfg_dataset(total=120, seed=4, label_noise=True)
        index_of = {name: i for i, name in enumerate(YANCFG_FAMILIES)}
        noise_sets = [
            {index_of[a], index_of[b]} for a, b, _ in LABEL_NOISE_PAIRS
        ]
        changed = 0
        for before, after in zip(clean.acfgs, noisy.acfgs):
            if before.label != after.label:
                changed += 1
                assert any(
                    {before.label, after.label} == pair for pair in noise_sets
                )
        assert changed > 0, "noise must actually flip some labels"

    def test_rbot_sdbot_profiles_are_near_duplicates(self):
        rbot = YANCFG_PROFILES["Rbot"]
        sdbot = YANCFG_PROFILES["Sdbot"]
        assert rbot.num_functions == sdbot.num_functions
        assert rbot.block_length == sdbot.block_length
        assert rbot.weight_mov == sdbot.weight_mov

    def test_minimum_per_family(self):
        counts = family_sample_counts(60, minimum_per_family=4)
        assert all(v >= 4 for v in counts.values())
