"""Tests for the synthetic MSKCFG corpus."""

import numpy as np
import pytest

from repro.datasets.mskcfg import (
    MSKCFG_FAMILIES,
    MSKCFG_FAMILY_COUNTS,
    MSKCFG_PROFILES,
    family_sample_counts,
    generate_mskcfg_dataset,
    generate_mskcfg_listings,
    generate_mskcfg_sample,
)
from repro.datasets.synthetic_asm import ObfuscationKnobs
from repro.exceptions import DatasetError


class TestFamilyTable:
    def test_nine_families(self):
        assert len(MSKCFG_FAMILIES) == 9
        assert "Kelihos_ver3" in MSKCFG_FAMILIES
        assert "Obfuscator.ACY" in MSKCFG_FAMILIES

    def test_real_total_matches_paper(self):
        assert sum(MSKCFG_FAMILY_COUNTS.values()) == 10868

    def test_profile_for_every_family(self):
        assert set(MSKCFG_PROFILES) == set(MSKCFG_FAMILIES)


class TestSampleCounts:
    def test_proportions_preserved(self):
        counts = family_sample_counts(1000, minimum_per_family=1)
        # Kelihos_ver3 is the largest family in Figure 7.
        assert counts["Kelihos_ver3"] == max(counts.values())
        assert counts["Simda"] == min(counts.values())

    def test_minimum_floor(self):
        counts = family_sample_counts(50, minimum_per_family=4)
        assert all(v >= 4 for v in counts.values())


class TestDatasetGeneration:
    def test_dataset_structure(self, tiny_mskcfg):
        assert tiny_mskcfg.num_classes == 9
        assert tiny_mskcfg.family_names == MSKCFG_FAMILIES
        assert len(tiny_mskcfg) >= 36  # >= 4 per family
        assert all(a.label is not None for a in tiny_mskcfg.acfgs)
        assert all(a.num_attributes == 11 for a in tiny_mskcfg.acfgs)

    def test_deterministic(self):
        a = generate_mskcfg_dataset(total=20, seed=5)
        b = generate_mskcfg_dataset(total=20, seed=5)
        assert len(a) == len(b)
        np.testing.assert_array_equal(
            a.acfgs[0].attributes, b.acfgs[0].attributes
        )

    def test_too_small_total_rejected(self):
        with pytest.raises(DatasetError):
            generate_mskcfg_listings(total=3)

    def test_listings_carry_labels_in_family_order(self):
        listings = generate_mskcfg_listings(total=20, seed=0)
        labels = {label for _, _, label in listings}
        assert labels == set(range(9))

    def test_families_structurally_distinguishable(self, tiny_mskcfg):
        """Sanity: per-family mean graph size differs enough to learn from."""
        sizes_by_family = {}
        for acfg in tiny_mskcfg.acfgs:
            sizes_by_family.setdefault(acfg.label, []).append(acfg.num_vertices)
        means = [np.mean(v) for v in sizes_by_family.values()]
        assert max(means) > 2 * min(means)

    def test_parallel_extraction_matches(self):
        sequential = generate_mskcfg_dataset(total=20, seed=9, max_workers=1)
        parallel = generate_mskcfg_dataset(total=20, seed=9, max_workers=4)
        assert [a.name for a in sequential.acfgs] == [a.name for a in parallel.acfgs]


class TestSampleRegeneration:
    def test_sample_matches_corpus_entry_bit_for_bit(self):
        listings = generate_mskcfg_listings(total=18, seed=5,
                                            minimum_per_family=2)
        for entry in (listings[0], listings[-1]):
            name, _, label = entry
            family = MSKCFG_FAMILIES[label]
            index = int(name.rsplit("_", 1)[1])
            assert generate_mskcfg_sample(family, index, seed=5) == entry

    def test_unknown_family_rejected(self):
        with pytest.raises(DatasetError):
            generate_mskcfg_sample("NotAFamily", 0)

    def test_knobs_change_only_obfuscation(self):
        clean = generate_mskcfg_sample("Simda", 0, seed=5)
        junked = generate_mskcfg_sample(
            "Simda", 0, seed=5, knobs=ObfuscationKnobs(junk_probability=1.0)
        )
        assert junked[0] == clean[0] and junked[2] == clean[2]
        assert junked[1] != clean[1]
        # Junk insertion only adds instructions (addresses shift, but
        # the listing strictly grows).
        assert len(junked[1].splitlines()) > len(clean[1].splitlines())


class TestPerSampleKnobs:
    def test_override_targets_one_sample(self):
        baseline = generate_mskcfg_listings(total=18, seed=5,
                                            minimum_per_family=2)
        target = baseline[3][0]
        overridden = generate_mskcfg_listings(
            total=18, seed=5, minimum_per_family=2,
            per_sample_knobs={target: ObfuscationKnobs(junk_probability=1.0)},
        )
        for before, after in zip(baseline, overridden):
            if before[0] == target:
                assert after[1] != before[1]
            else:
                assert after == before

    def test_global_knobs_lose_to_per_sample(self):
        knobs = ObfuscationKnobs(junk_probability=1.0)
        listings = generate_mskcfg_listings(total=18, seed=5,
                                            minimum_per_family=2)
        target = listings[0][0]
        mixed = generate_mskcfg_listings(
            total=18, seed=5, minimum_per_family=2, knobs=knobs,
            per_sample_knobs={target: ObfuscationKnobs()},
        )
        # The per-sample empty override wins: sample 0 keeps profile
        # obfuscation while everything else gets the global junk knob.
        assert mixed[0] == listings[0]
