"""Shared fixture: one small trained classifier for the attack tests.

Training is the expensive part, so a single session-scoped Magic is
shared by the feature-space and problem-space attack tests.  The corpus
matches the ``tiny_mskcfg`` session fixture (total=45, seed=11) so the
asm attack's regenerated samples are bit-identical to what the model
trained on.
"""

import pytest

from repro.core.dgcnn import ModelConfig
from repro.core.magic import Magic
from repro.train.trainer import TrainingConfig

#: Seed of the tiny_mskcfg session fixture; the asm knob attack must
#: regenerate samples from the same stream.
TINY_SEED = 11


@pytest.fixture(scope="session")
def tiny_magic(tiny_mskcfg):
    magic = Magic(
        ModelConfig(
            num_attributes=11,
            num_classes=tiny_mskcfg.num_classes,
            pooling="sort_weighted",
            graph_conv_sizes=(16, 16),
            sort_k=8,
            hidden_size=16,
            dropout=0.0,
            seed=0,
        ),
        tiny_mskcfg.family_names,
    )
    magic.fit(
        tiny_mskcfg.acfgs,
        training_config=TrainingConfig(
            epochs=6, batch_size=16, learning_rate=5e-3, seed=0
        ),
    )
    return magic
