"""Tests for the gradient-guided feature-space ACFG attack."""

import numpy as np
import pytest

from repro.adv import AttackConfig, FeatureSpaceAttack, input_gradients
from repro.exceptions import ConfigurationError
from repro.features.validator import is_semantically_valid

ATTACK = AttackConfig(epsilon=1.0, steps=4, seed=7)


@pytest.fixture(scope="module")
def outcome(tiny_magic, tiny_mskcfg):
    attack = FeatureSpaceAttack(tiny_magic.model, tiny_magic.scaler, ATTACK)
    return attack.attack(tiny_mskcfg.acfgs)


class TestAttackConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AttackConfig(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            AttackConfig(steps=0)
        with pytest.raises(ConfigurationError):
            AttackConfig(step_size=-0.1)

    def test_default_step_size_reaches_the_ball(self):
        config = AttackConfig(epsilon=2.0, steps=5)
        assert config.resolved_step_size == pytest.approx(1.0)
        assert AttackConfig(step_size=0.25).resolved_step_size == pytest.approx(0.25)


class TestInputGradients:
    def test_gradient_shape_and_model_state_restored(self, tiny_magic, tiny_mskcfg):
        scaled = tiny_magic.scaler.transform(tiny_mskcfg.acfgs[:4])
        labels = np.array([g.label for g in scaled], dtype=np.int64)
        tiny_magic.model.train(True)
        gradients, boundaries, loss, probs = input_gradients(
            tiny_magic.model, scaled, labels
        )
        assert tiny_magic.model.training  # restored
        tiny_magic.model.train(False)
        total_vertices = sum(g.num_vertices for g in scaled)
        assert gradients.shape == (total_vertices, 11)
        assert boundaries[-1] == total_vertices
        assert np.isfinite(loss)
        assert probs.shape == (4, tiny_mskcfg.num_classes)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


class TestFeatureSpaceAttack:
    def test_requires_fitted_scaler(self, tiny_magic):
        from repro.features.scaling import AttributeScaler

        with pytest.raises(ConfigurationError):
            FeatureSpaceAttack(tiny_magic.model, AttributeScaler())

    def test_rejects_empty_and_unlabelled(self, tiny_magic, tiny_mskcfg):
        attack = FeatureSpaceAttack(tiny_magic.model, tiny_magic.scaler, ATTACK)
        with pytest.raises(ConfigurationError):
            attack.attack([])
        stripped = tiny_mskcfg.acfgs[0]
        unlabelled = type(stripped)(
            adjacency=stripped.adjacency,
            attributes=stripped.attributes,
            label=None,
            name=stripped.name,
        )
        with pytest.raises(ConfigurationError):
            attack.attack([unlabelled])

    def test_all_adversarial_samples_semantically_valid(self, outcome):
        for graph in outcome.adversarial_acfgs:
            assert is_semantically_valid(graph.attributes, graph.adjacency)

    def test_outcome_aligned_with_input(self, outcome, tiny_mskcfg):
        assert len(outcome.records) == len(tiny_mskcfg.acfgs)
        assert len(outcome.adversarial_acfgs) == len(tiny_mskcfg.acfgs)
        assert outcome.clean_probabilities.shape == (
            len(tiny_mskcfg.acfgs), tiny_mskcfg.num_classes,
        )
        for record, acfg in zip(outcome.records, tiny_mskcfg.acfgs):
            assert record.name == acfg.name
            assert record.label == acfg.label

    def test_attack_reduces_accuracy(self, outcome, tiny_mskcfg):
        labels = np.array([g.label for g in tiny_mskcfg.acfgs])
        clean = (outcome.clean_probabilities.argmax(axis=1) == labels).mean()
        adv = (outcome.adversarial_probabilities.argmax(axis=1) == labels).mean()
        assert adv < clean
        assert 0.0 <= outcome.success_rate <= 1.0
        assert outcome.success_rate > 0.0

    def test_mutable_perturbation_stays_inside_the_ball(
        self, outcome, tiny_magic, tiny_mskcfg
    ):
        """Every channel except total/vertex respects epsilon exactly.

        ``total_instructions``/``vertex_instructions`` may overshoot
        when the projector raises them to cover the category sum, so
        they only get a slack bound.
        """
        from repro.features.attributes import attribute_names

        names = attribute_names()
        strict = [
            i for i, name in enumerate(names)
            if name not in ("total_instructions", "vertex_instructions")
        ]
        clean_scaled = tiny_magic.scaler.transform(tiny_mskcfg.acfgs)
        adv_scaled = tiny_magic.scaler.transform(outcome.adversarial_acfgs)
        for clean, adv in zip(clean_scaled, adv_scaled):
            delta = np.abs(adv.attributes - clean.attributes)
            assert delta[:, strict].max() <= ATTACK.epsilon + 1e-6
            assert delta.max() <= 2.0 * ATTACK.epsilon + 1e-6

    def test_adjacency_and_labels_untouched(self, outcome, tiny_mskcfg):
        for adv, clean in zip(outcome.adversarial_acfgs, tiny_mskcfg.acfgs):
            np.testing.assert_array_equal(adv.adjacency, clean.adjacency)
            assert adv.label == clean.label

    def test_deterministic_under_fixed_seed(self, outcome, tiny_magic, tiny_mskcfg):
        repeat = FeatureSpaceAttack(
            tiny_magic.model, tiny_magic.scaler, ATTACK
        ).attack(tiny_mskcfg.acfgs)
        np.testing.assert_array_equal(
            outcome.adversarial_probabilities, repeat.adversarial_probabilities
        )
        for first, second in zip(
            outcome.adversarial_acfgs, repeat.adversarial_acfgs
        ):
            np.testing.assert_array_equal(first.attributes, second.attributes)
        assert [r.flipped for r in outcome.records] == [
            r.flipped for r in repeat.records
        ]

    def test_seed_changes_the_attack(self, outcome, tiny_magic, tiny_mskcfg):
        other = FeatureSpaceAttack(
            tiny_magic.model,
            tiny_magic.scaler,
            AttackConfig(epsilon=1.0, steps=4, seed=8),
        ).attack(tiny_mskcfg.acfgs)
        assert any(
            not np.array_equal(first.attributes, second.attributes)
            for first, second in zip(
                outcome.adversarial_acfgs, other.adversarial_acfgs
            )
        )
