"""Tests for the per-family robustness report."""

import numpy as np
import pytest

from repro.adv import build_robustness_report
from repro.exceptions import ConfigurationError

FAMILIES = ["alpha", "beta", "gamma"]


def probs(rows):
    matrix = np.array(rows, dtype=np.float64)
    return matrix / matrix.sum(axis=1, keepdims=True)


class TestBuildRobustnessReport:
    def test_per_family_aggregation(self):
        labels = np.array([0, 0, 1, 1])
        clean = probs([[8, 1, 1], [8, 1, 1], [1, 8, 1], [8, 1, 1]])
        adversarial = probs([[1, 8, 1], [8, 1, 1], [1, 8, 1], [8, 1, 1]])
        report = build_robustness_report(
            FAMILIES, labels, clean, adversarial, [0.5, 0.1, 0.2, 0.3]
        )

        # gamma has no samples and is omitted from the breakdown.
        assert [f.family for f in report.families] == ["alpha", "beta"]
        alpha, beta = report.families
        assert alpha.num_samples == 2
        assert alpha.clean_accuracy == pytest.approx(1.0)
        assert alpha.adversarial_accuracy == pytest.approx(0.5)
        assert alpha.attack_success_rate == pytest.approx(0.5)
        assert alpha.mean_perturbation == pytest.approx(0.3)
        # One beta sample was already misclassified clean; the attack
        # success rate only counts the clean-correct one (not flipped).
        assert beta.clean_accuracy == pytest.approx(0.5)
        assert beta.attack_success_rate == pytest.approx(0.0)

        assert report.clean_accuracy == pytest.approx(0.75)
        assert report.adversarial_accuracy == pytest.approx(0.5)
        assert report.accuracy_drop == pytest.approx(0.25)

    def test_margins_signed(self):
        labels = np.array([0])
        clean = probs([[8, 1, 1]])
        adversarial = probs([[1, 8, 1]])
        report = build_robustness_report(FAMILIES, labels, clean, adversarial)
        assert report.families[0].clean_margin > 0.0
        assert report.families[0].adversarial_margin < 0.0

    def test_shape_mismatches_rejected(self):
        labels = np.array([0, 1])
        clean = probs([[1, 1, 1], [1, 1, 1]])
        with pytest.raises(ConfigurationError):
            build_robustness_report(FAMILIES, labels, clean, clean[:1])
        with pytest.raises(ConfigurationError):
            build_robustness_report(FAMILIES, labels[:1], clean, clean)
        with pytest.raises(ConfigurationError):
            build_robustness_report(FAMILIES, labels, clean, clean, [0.1])

    def test_format_table_and_dict(self):
        labels = np.array([0, 1])
        clean = probs([[8, 1, 1], [1, 8, 1]])
        report = build_robustness_report(FAMILIES, labels, clean, clean)
        table = report.format_table()
        assert "alpha" in table and "overall" in table
        payload = report.to_dict()
        assert payload["accuracy_drop"] == pytest.approx(0.0)
        assert len(payload["families"]) == 2
