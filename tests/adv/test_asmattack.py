"""Tests for the problem-space (asm re-obfuscation) attack."""

import pytest

from repro.adv import AsmAttackResult, asm_attack_corpus, asm_knob_attack
from repro.datasets.mskcfg import MSKCFG_FAMILIES, generate_mskcfg_sample
from repro.datasets.synthetic_asm import ObfuscationKnobs
from repro.exceptions import ConfigurationError

from tests.adv.conftest import TINY_SEED

#: A short grid keeps each test to a handful of parse->classify passes.
SMALL_GRID = (
    ObfuscationKnobs(junk_probability=0.8),
    ObfuscationKnobs(dispatch_probability=0.3, dispatch_fanout=(4, 8)),
)


class TestAsmKnobAttack:
    def test_result_structure(self, tiny_magic):
        result = asm_knob_attack(
            tiny_magic, MSKCFG_FAMILIES[0], 0, seed=TINY_SEED, grid=SMALL_GRID
        )
        assert isinstance(result, AsmAttackResult)
        assert result.family == MSKCFG_FAMILIES[0]
        assert result.label == 0
        assert 1 <= result.attempts <= len(SMALL_GRID)
        assert result.flipped == (result.adversarial_label != result.label)
        payload = result.to_dict()
        assert payload["family"] == MSKCFG_FAMILIES[0]
        assert payload["knobs"] is None or isinstance(payload["knobs"], dict)

    def test_reported_variant_never_weaker_than_clean(self, tiny_magic):
        result = asm_knob_attack(
            tiny_magic, MSKCFG_FAMILIES[1], 0, seed=TINY_SEED, grid=SMALL_GRID
        )
        assert result.adversarial_margin <= result.clean_margin

    def test_deterministic(self, tiny_magic):
        first = asm_knob_attack(
            tiny_magic, MSKCFG_FAMILIES[2], 0, seed=TINY_SEED, grid=SMALL_GRID
        )
        second = asm_knob_attack(
            tiny_magic, MSKCFG_FAMILIES[2], 0, seed=TINY_SEED, grid=SMALL_GRID
        )
        assert first.to_dict() == second.to_dict()

    def test_empty_grid_rejected(self, tiny_magic):
        with pytest.raises(ConfigurationError):
            asm_knob_attack(
                tiny_magic, MSKCFG_FAMILIES[0], 0, seed=TINY_SEED, grid=()
            )

    def test_corpus_runner_preserves_order(self, tiny_magic):
        coordinates = [(MSKCFG_FAMILIES[0], 0), (MSKCFG_FAMILIES[3], 1)]
        results = asm_attack_corpus(
            tiny_magic, coordinates, seed=TINY_SEED, grid=SMALL_GRID
        )
        assert [(r.family, r.name) for r in results] == [
            (family, generate_mskcfg_sample(family, index, seed=TINY_SEED)[0])
            for family, index in coordinates
        ]
