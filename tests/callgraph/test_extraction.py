"""Tests for call-graph extraction."""

import pytest

from repro.callgraph import call_graph_from_text
from repro.exceptions import CfgConstructionError

#: main calls helper twice; helper calls leaf; leaf is self-contained.
CALL_ASM = """
.text:00401000 push ebp
.text:00401001 call sub_401020
.text:00401006 call sub_401020
.text:0040100B call sub_401040
.text:00401010 retn
.text:00401020 mov eax, 0x1
.text:00401023 call sub_401040
.text:00401028 retn
.text:00401040 xor eax, eax
.text:00401042 retn
"""


class TestExtraction:
    def test_functions_found(self):
        graph = call_graph_from_text(CALL_ASM)
        entries = [f.entry_address for f in graph.functions()]
        assert entries == [0x401000, 0x401020, 0x401040]

    def test_call_edges(self):
        graph = call_graph_from_text(CALL_ASM)
        assert set(graph.edges()) == {
            (0x401000, 0x401020),
            (0x401000, 0x401040),
            (0x401020, 0x401040),
        }

    def test_duplicate_calls_collapse(self):
        graph = call_graph_from_text(CALL_ASM)
        main = graph.get_function(0x401000)
        assert graph.out_degree(main) == 2  # two distinct callees

    def test_instruction_partition(self):
        graph = call_graph_from_text(CALL_ASM)
        total = sum(f.num_instructions for f in graph.functions())
        assert total == 10
        main = graph.get_function(0x401000)
        assert main.num_instructions == 5
        leaf = graph.get_function(0x401040)
        assert leaf.num_instructions == 2

    def test_local_cfgs_built_without_call_edges(self):
        graph = call_graph_from_text(CALL_ASM)
        main = graph.get_function(0x401000)
        # Local CFG must not contain blocks from other functions.
        for block in main.local_cfg.blocks():
            assert 0x401000 <= block.start_address < 0x401020

    def test_degrees(self):
        graph = call_graph_from_text(CALL_ASM)
        leaf = graph.get_function(0x401040)
        assert graph.in_degree(leaf) == 2
        assert graph.out_degree(leaf) == 0

    def test_networkx_export(self):
        graph = call_graph_from_text(CALL_ASM)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.nodes[0x401000]["name"] == "sub_401000"

    def test_single_function_program(self):
        graph = call_graph_from_text(".text:00401000 retn\n")
        assert graph.num_functions == 1
        assert graph.num_calls == 0

    def test_unresolvable_call_ignored(self):
        text = (
            ".text:00401000 call eax\n"
            ".text:00401002 retn\n"
        )
        graph = call_graph_from_text(text)
        assert graph.num_functions == 1
        assert graph.num_calls == 0

    def test_empty_program_rejected(self):
        from repro.asm.program import Program
        from repro.callgraph.extraction import extract_call_graph

        with pytest.raises(CfgConstructionError):
            extract_call_graph(Program(), lambda op: None)


class TestSyntheticCorpusExtraction:
    def test_family_programs_have_call_graphs(self):
        from repro.datasets import generate_mskcfg_listings

        for name, text, _ in generate_mskcfg_listings(total=9, seed=2)[:5]:
            graph = call_graph_from_text(text, name=name)
            assert graph.num_functions >= 1
            # Local CFGs exist for all functions.
            assert all(f.local_cfg is not None for f in graph.functions())
