"""Tests for call-graph feature hashing and the forest ensemble."""

import numpy as np
import pytest

from repro.callgraph import (
    CallGraphForestEnsemble,
    call_graph_feature_size,
    call_graph_from_text,
    call_graph_to_vector,
    function_descriptor,
)
from repro.datasets import generate_mskcfg_listings
from repro.exceptions import TrainingError

from tests.callgraph.test_extraction import CALL_ASM


class TestFeatures:
    def test_vector_size(self):
        graph = call_graph_from_text(CALL_ASM)
        vector = call_graph_to_vector(graph, num_buckets=16)
        assert vector.shape == (call_graph_feature_size(16),)

    def test_histogram_counts_functions(self):
        graph = call_graph_from_text(CALL_ASM)
        vector = call_graph_to_vector(graph, num_buckets=8)
        assert vector[:8].sum() == graph.num_functions

    def test_global_channels(self):
        graph = call_graph_from_text(CALL_ASM)
        vector = call_graph_to_vector(graph, num_buckets=8)
        assert vector[8] == graph.num_functions
        assert vector[9] == graph.num_calls

    def test_descriptor_contents(self):
        graph = call_graph_from_text(CALL_ASM)
        main = graph.get_function(0x401000)
        descriptor = function_descriptor(main, graph)
        assert descriptor[0] == main.num_instructions
        assert descriptor[3] == 2  # out-degree in the call graph

    def test_hashing_deterministic(self):
        graph = call_graph_from_text(CALL_ASM)
        a = call_graph_to_vector(graph, num_buckets=32)
        b = call_graph_to_vector(graph, num_buckets=32)
        np.testing.assert_array_equal(a, b)

    def test_different_programs_differ(self):
        a = call_graph_from_text(CALL_ASM)
        b = call_graph_from_text(".text:00401000 retn\n")
        assert not np.array_equal(
            call_graph_to_vector(a), call_graph_to_vector(b)
        )


class TestForestEnsemble:
    def build_corpus(self, total=45, seed=1):
        listings = generate_mskcfg_listings(total=total, seed=seed,
                                            minimum_per_family=4)
        graphs = [call_graph_from_text(text, name=name)
                  for name, text, _ in listings]
        labels = [label for _, _, label in listings]
        return graphs, labels

    def test_learns_synthetic_families(self):
        graphs, labels = self.build_corpus()
        ensemble = CallGraphForestEnsemble(
            num_classes=9, bucket_widths=(16, 32), n_estimators=15, seed=0
        )
        ensemble.fit(graphs, labels)
        accuracy = (ensemble.predict(graphs) == np.array(labels)).mean()
        assert accuracy > 0.8

    def test_proba_normalized(self):
        graphs, labels = self.build_corpus(total=27)
        ensemble = CallGraphForestEnsemble(
            num_classes=9, bucket_widths=(8,), n_estimators=5, seed=0
        ).fit(graphs, labels)
        proba = ensemble.predict_proba(graphs[:5])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(TrainingError):
            CallGraphForestEnsemble(num_classes=3, bucket_widths=())
        with pytest.raises(TrainingError):
            CallGraphForestEnsemble(num_classes=3).fit([], [1])
        with pytest.raises(TrainingError):
            CallGraphForestEnsemble(num_classes=3).predict([])
