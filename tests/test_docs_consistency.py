"""Meta-tests: documentation stays consistent with the code.

A reproduction's DESIGN/README claims rot silently; these tests pin the
load-bearing ones to the actual repository contents.
"""

import os
import re

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")


def read(name):
    with open(os.path.join(REPO_ROOT, name), "r", encoding="utf-8") as fh:
        return fh.read()


class TestDesignDocument:
    def test_every_referenced_bench_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"`benchmarks/(bench_\w+\.py)`", design):
            path = os.path.join(REPO_ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), f"DESIGN.md references missing {path}"

    def test_every_bench_file_is_in_design(self):
        design = read("DESIGN.md")
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if not (name.startswith("bench_") and name.endswith(".py")):
                continue
            if name == "bench_common.py":  # shared helpers, not an experiment
                continue
            assert name in design, f"{name} missing from DESIGN.md index"

    def test_paper_verification_recorded(self):
        design = read("DESIGN.md")
        assert "Paper text verified" in design

    def test_substitution_table_present(self):
        design = read("DESIGN.md")
        for substitution in ("PyTorch", "IDA Pro", "MSKCFG", "YANCFG"):
            assert substitution in design


class TestReadme:
    def test_referenced_examples_exist(self):
        readme = read("README.md")
        for match in re.finditer(r"`examples/(\w+\.py)`", readme):
            path = os.path.join(REPO_ROOT, "examples", match.group(1))
            assert os.path.exists(path), f"README references missing {path}"

    def test_referenced_benches_exist(self):
        readme = read("README.md")
        for match in re.finditer(r"`benchmarks/(bench_\w+\.py)`", readme):
            path = os.path.join(REPO_ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), f"README references missing {path}"

    def test_quickstart_imports_are_valid(self):
        """The README quickstart's import lines must actually work."""
        readme = read("README.md")
        for line in readme.splitlines():
            line = line.strip()
            if line.startswith("from repro") and " import " in line:
                exec(line, {})  # raises on a broken public API


class TestExperiments:
    def test_every_artifact_section_present(self):
        experiments = read("EXPERIMENTS.md")
        for artifact in ("Table I", "Table II", "Table III", "Table IV",
                         "Table V", "Figure 7", "Figure 8", "Figure 11",
                         "execution overhead", "Ablations"):
            assert artifact in experiments, f"{artifact} missing"

    def test_no_unrun_placeholders(self):
        experiments = read("EXPERIMENTS.md")
        assert "no recorded run" not in experiments, (
            "EXPERIMENTS.md was rendered before all benchmarks ran"
        )
