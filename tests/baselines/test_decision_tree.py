"""Tests for the CART trees."""

import numpy as np
import pytest

from repro.baselines.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
)
from repro.exceptions import TrainingError


class TestClassifier:
    def test_fits_axis_aligned_split(self):
        x = np.array([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = DecisionTreeClassifier(num_classes=2, max_depth=2).fit(x, y)
        np.testing.assert_array_equal(tree.predict(x), y)

    def test_xor_needs_depth_two(self):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        shallow = DecisionTreeClassifier(num_classes=2, max_depth=1).fit(x, y)
        deep = DecisionTreeClassifier(num_classes=2, max_depth=3).fit(x, y)
        assert (shallow.predict(x) == y).mean() <= 0.75
        np.testing.assert_array_equal(deep.predict(x), y)

    def test_predict_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((40, 3))
        y = rng.integers(0, 3, 40)
        tree = DecisionTreeClassifier(num_classes=3, max_depth=4).fit(x, y)
        proba = tree.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_min_samples_leaf_respected(self):
        x = np.arange(10, dtype=float)[:, None]
        y = np.array([0] * 5 + [1] * 5)
        tree = DecisionTreeClassifier(
            num_classes=2, max_depth=10, min_samples_leaf=5
        ).fit(x, y)
        # Only one split possible: at the class boundary.
        np.testing.assert_array_equal(tree.predict(x), y)

    def test_pure_node_stops_growing(self):
        x = np.zeros((5, 2))
        y = np.ones(5, dtype=np.int64)
        tree = DecisionTreeClassifier(num_classes=2, max_depth=8).fit(x, y)
        assert tree._root.is_leaf

    def test_validation(self):
        with pytest.raises(TrainingError):
            DecisionTreeClassifier(num_classes=1)
        with pytest.raises(TrainingError):
            DecisionTreeClassifier(num_classes=2, max_depth=0)
        with pytest.raises(TrainingError):
            DecisionTreeClassifier(num_classes=2).fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(TrainingError):
            DecisionTreeClassifier(num_classes=2).fit(np.zeros((3, 2)), np.zeros(2))

    def test_predict_before_fit(self):
        with pytest.raises(TrainingError):
            DecisionTreeClassifier(num_classes=2).predict(np.zeros((1, 2)))


class TestRegressor:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 50)[:, None]
        y = (x[:, 0] > 0.5).astype(float) * 10
        tree = DecisionTreeRegressor(max_depth=2).fit(x, y)
        predictions = tree.predict(x)
        np.testing.assert_allclose(predictions, y, atol=1e-9)

    def test_leaf_value_is_mean(self):
        x = np.zeros((4, 1))
        y = np.array([1.0, 2.0, 3.0, 4.0])
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        np.testing.assert_allclose(tree.predict(np.zeros((1, 1))), [2.5])

    def test_reduces_mse_vs_constant(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 2))
        y = np.sin(3 * x[:, 0]) + 0.1 * rng.standard_normal(100)
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=3).fit(x, y)
        mse_tree = np.mean((tree.predict(x) - y) ** 2)
        mse_const = np.mean((y.mean() - y) ** 2)
        assert mse_tree < 0.5 * mse_const
