"""Tests for the random forest."""

import numpy as np
import pytest

from repro.baselines.random_forest import RandomForestClassifier
from repro.exceptions import TrainingError


def blobs(rng, n_per_class=30, num_classes=3):
    xs, ys = [], []
    for label in range(num_classes):
        xs.append(rng.standard_normal((n_per_class, 4)) + 3.0 * label)
        ys.append(np.full(n_per_class, label))
    return np.concatenate(xs), np.concatenate(ys)


class TestRandomForest:
    def test_learns_blobs(self, rng):
        x, y = blobs(rng)
        forest = RandomForestClassifier(num_classes=3, n_estimators=15, seed=0)
        forest.fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.95

    def test_proba_normalized(self, rng):
        x, y = blobs(rng, n_per_class=10)
        forest = RandomForestClassifier(num_classes=3, n_estimators=5, seed=0).fit(x, y)
        proba = forest.predict_proba(x)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_for_seed(self, rng):
        x, y = blobs(rng, n_per_class=10)
        a = RandomForestClassifier(num_classes=3, n_estimators=5, seed=4).fit(x, y)
        b = RandomForestClassifier(num_classes=3, n_estimators=5, seed=4).fit(x, y)
        np.testing.assert_array_equal(a.predict_proba(x), b.predict_proba(x))

    def test_max_features_rules(self, rng):
        x, y = blobs(rng, n_per_class=8)
        for rule in ("sqrt", "log2", None):
            RandomForestClassifier(
                num_classes=3, n_estimators=2, max_features=rule, seed=0
            ).fit(x, y)
        with pytest.raises(TrainingError):
            RandomForestClassifier(
                num_classes=3, n_estimators=2, max_features="bogus"
            ).fit(x, y)

    def test_validation(self):
        with pytest.raises(TrainingError):
            RandomForestClassifier(num_classes=3, n_estimators=0)
        with pytest.raises(TrainingError):
            RandomForestClassifier(num_classes=3).fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(TrainingError):
            RandomForestClassifier(num_classes=3).predict(np.zeros((1, 2)))
