"""Tests for the autoencoder + GBT pipeline."""

import numpy as np
import pytest

from repro.baselines.autoencoder import AutoencoderGbtClassifier, DenseAutoencoder
from repro.exceptions import TrainingError
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class TestDenseAutoencoder:
    def test_shapes(self):
        ae = DenseAutoencoder(10, hidden_sizes=(6, 3), seed=0)
        assert ae.code_size == 3
        out = ae(Tensor(np.zeros((4, 10))))
        assert out.shape == (4, 10)
        assert ae.encode(np.zeros((4, 10))).shape == (4, 3)

    def test_reconstruction_improves_with_training(self, rng):
        data = rng.standard_normal((60, 8)) @ rng.standard_normal((8, 8)) * 0.3
        ae = DenseAutoencoder(8, hidden_sizes=(4,), seed=0)
        x = Tensor(data)
        initial = ((ae(x) - x) ** 2).mean().item()
        optimizer = Adam(ae.parameters(), lr=1e-2)
        for _ in range(120):
            optimizer.zero_grad()
            loss = ((ae(x) - x) ** 2).mean()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.5 * initial

    def test_needs_hidden_layers(self):
        with pytest.raises(TrainingError):
            DenseAutoencoder(4, hidden_sizes=())


class TestPipeline:
    def test_learns_blobs(self, rng):
        x = np.concatenate([
            rng.standard_normal((25, 6)) + 3 * label for label in range(2)
        ])
        y = np.repeat([0, 1], 25)
        clf = AutoencoderGbtClassifier(
            num_classes=2, hidden_sizes=(4, 2), ae_epochs=40,
            gbt_rounds=15, seed=0,
        ).fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9
        np.testing.assert_allclose(clf.predict_proba(x).sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(TrainingError):
            AutoencoderGbtClassifier(num_classes=2).predict(np.zeros((1, 4)))
