"""Tests for the gradient-boosted classifier."""

import numpy as np
import pytest

from repro.baselines.gradient_boosting import GradientBoostingClassifier
from repro.exceptions import TrainingError


def blobs(rng, n_per_class=25, num_classes=3):
    xs, ys = [], []
    for label in range(num_classes):
        xs.append(rng.standard_normal((n_per_class, 3)) + 2.5 * label)
        ys.append(np.full(n_per_class, label))
    return np.concatenate(xs), np.concatenate(ys)


class TestGradientBoosting:
    def test_learns_blobs(self, rng):
        x, y = blobs(rng)
        booster = GradientBoostingClassifier(num_classes=3, n_rounds=15, seed=0)
        booster.fit(x, y)
        assert (booster.predict(x) == y).mean() > 0.95

    def test_more_rounds_reduce_train_loss(self, rng):
        x, y = blobs(rng, n_per_class=15)

        def loss_at(rounds):
            booster = GradientBoostingClassifier(
                num_classes=3, n_rounds=rounds, seed=0
            ).fit(x, y)
            proba = booster.predict_proba(x)
            picked = np.clip(proba[np.arange(len(y)), y], 1e-12, 1)
            return -np.log(picked).mean()

        assert loss_at(20) < loss_at(2)

    def test_base_score_is_class_prior(self, rng):
        x = rng.standard_normal((20, 2))
        y = np.array([0] * 15 + [1] * 5)
        booster = GradientBoostingClassifier(num_classes=2, n_rounds=1, seed=0)
        booster.fit(x, y)
        np.testing.assert_allclose(
            np.exp(booster._base_score), [0.75, 0.25]
        )

    def test_proba_normalized(self, rng):
        x, y = blobs(rng, n_per_class=8)
        booster = GradientBoostingClassifier(num_classes=3, n_rounds=3, seed=0).fit(x, y)
        np.testing.assert_allclose(booster.predict_proba(x).sum(axis=1), 1.0)

    def test_subsampling(self, rng):
        x, y = blobs(rng, n_per_class=15)
        booster = GradientBoostingClassifier(
            num_classes=3, n_rounds=10, subsample=0.6, seed=0
        ).fit(x, y)
        assert (booster.predict(x) == y).mean() > 0.85

    def test_validation(self):
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(num_classes=1)
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(num_classes=2, subsample=0.0)
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(num_classes=2).fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(TrainingError):
            GradientBoostingClassifier(num_classes=2).predict(np.zeros((1, 2)))
