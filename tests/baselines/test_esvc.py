"""Tests for the chained ESVC ensemble."""

import numpy as np
import pytest

from repro.baselines.esvc import EsvcClassifier
from repro.exceptions import TrainingError


def blobs(rng, counts=(40, 20, 10)):
    xs, ys = [], []
    offsets = [[4, 4], [-4, 4], [0, -5]]
    for label, (count, offset) in enumerate(zip(counts, offsets)):
        xs.append(rng.standard_normal((count, 2)) + offset)
        ys.append(np.full(count, label))
    return np.concatenate(xs), np.concatenate(ys)


class TestEsvc:
    def test_learns_blobs(self, rng):
        x, y = blobs(rng)
        esvc = EsvcClassifier(num_classes=3, epochs=40, seed=0).fit(x, y)
        assert (esvc.predict(x) == y).mean() > 0.9

    def test_chain_order_is_by_family_size(self, rng):
        x, y = blobs(rng, counts=(10, 40, 20))
        esvc = EsvcClassifier(num_classes=3, epochs=5, seed=0).fit(x, y)
        assert esvc._chain_order == [1, 2, 0]

    def test_thresholds_bound_training_fpr(self, rng):
        x, y = blobs(rng)
        bound = 0.05
        esvc = EsvcClassifier(
            num_classes=3, epochs=40, max_false_positive_rate=bound, seed=0
        ).fit(x, y)
        for class_index in range(3):
            scores = esvc._machines[class_index].decision_function(x)
            negatives = scores[y != class_index]
            fpr = (negatives > esvc._thresholds[class_index]).mean()
            assert fpr <= bound + 1e-9

    def test_proba_argmax_matches_chain_decision(self, rng):
        x, y = blobs(rng)
        esvc = EsvcClassifier(num_classes=3, epochs=20, seed=0).fit(x, y)
        proba = esvc.predict_proba(x)
        np.testing.assert_array_equal(proba.argmax(axis=1), esvc.predict(x))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_fallthrough_assigns_everything(self, rng):
        x, y = blobs(rng)
        esvc = EsvcClassifier(num_classes=3, epochs=5, seed=0).fit(x, y)
        far = rng.standard_normal((5, 2)) * 100  # far from everything
        predictions = esvc.predict(far)
        assert ((0 <= predictions) & (predictions < 3)).all()

    def test_validation(self):
        with pytest.raises(TrainingError):
            EsvcClassifier(num_classes=3, max_false_positive_rate=0.0)
        with pytest.raises(TrainingError):
            EsvcClassifier(num_classes=3).predict(np.zeros((1, 2)))
