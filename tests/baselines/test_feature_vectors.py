"""Tests for the handcrafted aggregate feature vectors."""

import numpy as np

from repro.baselines.feature_vectors import (
    acfg_feature_names,
    acfg_to_feature_vector,
    dataset_to_matrix,
    standardize,
)
from repro.features.acfg import ACFG


def make_acfg(n=4, c=3, label=1, seed=0):
    rng = np.random.default_rng(seed)
    adjacency = (rng.random((n, n)) < 0.4).astype(float)
    return ACFG(
        adjacency=adjacency,
        attributes=rng.integers(0, 9, (n, c)).astype(float),
        label=label,
    )


class TestFeatureVector:
    def test_names_align_with_vector(self):
        acfg = make_acfg()
        vector = acfg_to_feature_vector(acfg)
        names = acfg_feature_names(acfg.num_attributes)
        assert len(names) == len(vector)

    def test_aggregates_correct(self):
        acfg = make_acfg()
        vector = acfg_to_feature_vector(acfg)
        c = acfg.num_attributes
        np.testing.assert_allclose(vector[:c], acfg.attributes.sum(axis=0))
        np.testing.assert_allclose(vector[c:2*c], acfg.attributes.mean(axis=0))
        np.testing.assert_allclose(vector[2*c:3*c], acfg.attributes.max(axis=0))

    def test_graph_stats(self):
        acfg = make_acfg()
        vector = acfg_to_feature_vector(acfg)
        names = acfg_feature_names(acfg.num_attributes)
        stats = dict(zip(names, vector))
        assert stats["num_vertices"] == acfg.num_vertices
        assert stats["num_edges"] == acfg.num_edges

    def test_dataset_to_matrix(self):
        acfgs = [make_acfg(seed=i, label=i % 2) for i in range(5)]
        features, labels = dataset_to_matrix(acfgs)
        assert features.shape[0] == 5
        np.testing.assert_array_equal(labels, [0, 1, 0, 1, 0])

    def test_unlabelled_maps_to_minus_one(self):
        acfg = make_acfg()
        acfg.label = None
        _, labels = dataset_to_matrix([acfg])
        assert labels[0] == -1


class TestStandardize:
    def test_train_standardized(self, rng):
        train = rng.standard_normal((40, 5)) * 7 + 3
        (scaled,) = standardize(train)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_other_matrices_use_train_statistics(self, rng):
        train = rng.standard_normal((40, 3))
        test = rng.standard_normal((10, 3)) + 100
        scaled_train, scaled_test = standardize(train, test)
        # Test mean must be far from zero: scaled with *train* stats.
        assert np.abs(scaled_test.mean(axis=0)).min() > 10

    def test_constant_feature_no_nan(self):
        train = np.ones((5, 2))
        (scaled,) = standardize(train)
        assert np.isfinite(scaled).all()
