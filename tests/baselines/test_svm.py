"""Tests for the linear SVM and one-vs-rest wrapper."""

import numpy as np
import pytest

from repro.baselines.svm import LinearSVM, OneVsRestSVM
from repro.exceptions import TrainingError


class TestLinearSVM:
    def test_separates_linearly_separable_data(self, rng):
        x = np.concatenate([
            rng.standard_normal((30, 2)) + [3, 3],
            rng.standard_normal((30, 2)) - [3, 3],
        ])
        y = np.array([1.0] * 30 + [-1.0] * 30)
        svm = LinearSVM(epochs=40, seed=0).fit(x, y)
        assert (svm.predict(x) == y).mean() > 0.95

    def test_labels_must_be_pm1(self, rng):
        with pytest.raises(TrainingError):
            LinearSVM().fit(np.zeros((2, 2)), np.array([0.0, 1.0]))

    def test_decision_before_fit(self):
        with pytest.raises(TrainingError):
            LinearSVM().decision_function(np.zeros((1, 2)))

    def test_regularization_shrinks_weights(self, rng):
        x = np.concatenate([
            rng.standard_normal((30, 2)) + [3, 3],
            rng.standard_normal((30, 2)) - [3, 3],
        ])
        y = np.array([1.0] * 30 + [-1.0] * 30)
        weak = LinearSVM(regularization=1e-4, epochs=30, seed=0).fit(x, y)
        strong = LinearSVM(regularization=1.0, epochs=30, seed=0).fit(x, y)
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_validation(self):
        with pytest.raises(TrainingError):
            LinearSVM(regularization=0.0)


class TestOneVsRest:
    def test_learns_three_blobs(self, rng):
        x = np.concatenate([
            rng.standard_normal((20, 2)) + offset
            for offset in ([0, 5], [5, -5], [-5, -5])
        ])
        y = np.repeat([0, 1, 2], 20)
        ovr = OneVsRestSVM(num_classes=3, epochs=40, seed=0).fit(x, y)
        assert (ovr.predict(x) == y).mean() > 0.9

    def test_proba_normalized(self, rng):
        x = rng.standard_normal((10, 2))
        y = rng.integers(0, 2, 10)
        ovr = OneVsRestSVM(num_classes=2, epochs=5, seed=0).fit(x, y)
        np.testing.assert_allclose(ovr.predict_proba(x).sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(TrainingError):
            OneVsRestSVM(num_classes=1)
        with pytest.raises(TrainingError):
            OneVsRestSVM(num_classes=2).predict(np.zeros((1, 2)))
