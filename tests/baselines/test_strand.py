"""Tests for the Strand-style sequence classifier."""

import numpy as np
import pytest

from repro.baselines.strand import StrandClassifier, sequence_ngrams, tokenize_acfg
from repro.exceptions import TrainingError
from repro.features.acfg import ACFG


def make_acfg(attributes, label=0):
    n = attributes.shape[0]
    return ACFG(adjacency=np.zeros((n, n)), attributes=attributes, label=label)


class TestTokenization:
    def test_deterministic(self):
        acfg = make_acfg(np.arange(12, dtype=float).reshape(4, 3))
        assert tokenize_acfg(acfg) == tokenize_acfg(acfg)

    def test_one_token_per_block(self):
        acfg = make_acfg(np.ones((7, 3)))
        assert len(tokenize_acfg(acfg)) == 7

    def test_identical_blocks_share_tokens(self):
        acfg = make_acfg(np.ones((3, 2)))
        tokens = tokenize_acfg(acfg)
        assert len(set(tokens)) == 1


class TestNgrams:
    def test_standard_case(self):
        grams = sequence_ngrams([1, 2, 3, 4], 2)
        assert grams == {(1, 2), (2, 3), (3, 4)}

    def test_short_sequence_collapses(self):
        assert sequence_ngrams([1, 2], 3) == {(1, 2)}

    def test_empty_sequence(self):
        assert sequence_ngrams([], 3) == set()


class TestClassifier:
    def make_family(self, rng, base, count, label):
        acfgs = []
        for _ in range(count):
            n = int(rng.integers(5, 9))
            attributes = np.tile(base, (n, 1)) + rng.integers(0, 2, (n, 3))
            acfgs.append(make_acfg(attributes.astype(float), label))
        return acfgs

    def test_separates_distinct_profiles(self, rng):
        family_a = self.make_family(rng, np.array([1.0, 0.0, 0.0]) * 20, 8, 0)
        family_b = self.make_family(rng, np.array([0.0, 20.0, 5.0]), 8, 1)
        acfgs = family_a + family_b
        labels = [a.label for a in acfgs]
        clf = StrandClassifier(num_classes=2, ngram=2).fit(acfgs, labels)
        assert (clf.predict(acfgs) == np.array(labels)).mean() > 0.9

    def test_proba_normalized_even_with_no_match(self, rng):
        train = self.make_family(rng, np.array([5.0, 5.0, 5.0]), 4, 0)
        clf = StrandClassifier(num_classes=2).fit(train, [0] * 4)
        # A radically different sample may match nothing: uniform fallback.
        alien = make_acfg(np.full((3, 3), 1e6))
        proba = clf.predict_proba([alien])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(TrainingError):
            StrandClassifier(num_classes=2, ngram=0)
        with pytest.raises(TrainingError):
            StrandClassifier(num_classes=2).fit([], [1])
        with pytest.raises(TrainingError):
            StrandClassifier(num_classes=2).predict([])
