"""Tests for the .asm listing parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.parser import AsmParser
from repro.exceptions import AsmParseError


class TestBasicParsing:
    def test_ida_style_line(self):
        program = AsmParser().parse(".text:00401000 push ebp\n")
        inst = program[0x401000]
        assert inst.mnemonic == "push"
        assert inst.operands == ["ebp"]

    def test_plain_hex_address(self):
        program = AsmParser().parse("00401000: mov eax, ebx\n")
        assert program[0x401000].operands == ["eax", "ebx"]

    def test_0x_prefixed_address(self):
        program = AsmParser().parse("0x401000 mov eax, 0x5\n")
        assert 0x401000 in program

    def test_encoded_bytes_consumed(self):
        program = AsmParser().parse(".text:00401000 55 8B EC push ebp\n")
        inst = program[0x401000]
        assert inst.mnemonic == "push"

    def test_comment_stripped(self):
        program = AsmParser().parse(".text:00401000 push ebp ; prologue\n")
        assert program[0x401000].operands == ["ebp"]

    def test_blank_lines_skipped(self):
        program = AsmParser().parse("\n\n.text:00401000 nop\n\n")
        assert len(program) == 1

    def test_sizes_normalized_to_address_gaps(self):
        text = (
            ".text:00401000 push ebp\n"
            ".text:00401003 mov eax, ebx\n"
            ".text:00401008 retn\n"
        )
        program = AsmParser().parse(text)
        assert program[0x401000].size == 3
        assert program[0x401003].size == 5
        assert program[0x401008].size >= 1

    def test_duplicate_addresses_keep_first(self):
        text = (
            ".text:00401000 push ebp\n"
            ".text:00401000 db 0x90\n"
        )
        program = AsmParser().parse(text)
        assert len(program) == 1
        assert program[0x401000].mnemonic == "push"

    def test_memory_operand_not_split(self):
        program = AsmParser().parse(".text:00401000 mov eax, [ebp+8]\n")
        assert program[0x401000].operands == ["eax", "[ebp+8]"]


class TestLabels:
    def test_label_attaches_to_next_instruction(self):
        parser = AsmParser()
        parser.parse("start:\n.text:00401000 nop\n")
        assert parser.labels["start"] == 0x401000

    def test_label_resolution_in_targets(self):
        parser = AsmParser()
        parser.parse("mylabel:\n.text:00401000 nop\n")
        assert parser.resolve_target("mylabel") == 0x401000


class TestResolveTarget:
    def test_loc_symbolic(self):
        assert AsmParser().resolve_target("loc_401010") == 0x401010

    def test_sub_symbolic(self):
        assert AsmParser().resolve_target("sub_40AB00") == 0x40AB00

    def test_short_prefix(self):
        assert AsmParser().resolve_target("short loc_401010") == 0x401010

    def test_hex_literal(self):
        assert AsmParser().resolve_target("0x401010") == 0x401010
        assert AsmParser().resolve_target("401010h") == 0x401010

    def test_bare_hex(self):
        assert AsmParser().resolve_target("00401010") == 0x401010

    def test_register_indirect_unresolvable(self):
        assert AsmParser().resolve_target("eax") is None
        assert AsmParser().resolve_target("[ebx+4]") is None


class TestStrictMode:
    def test_strict_raises_on_garbage(self):
        with pytest.raises(AsmParseError):
            AsmParser(strict=True).parse("this is not assembly\n")

    def test_lenient_counts_skips(self):
        parser = AsmParser(strict=False)
        parser.parse("garbage line\n.text:00401000 nop\n")
        assert parser.skipped_lines == 1

    def test_error_carries_line_number(self):
        with pytest.raises(AsmParseError) as excinfo:
            AsmParser(strict=True).parse(".text:00401000 nop\n???\n")
        assert excinfo.value.line_number == 2


class TestRobustness:
    @given(st.text(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_lenient_parser_never_crashes(self, text):
        """Property: arbitrary input never raises in lenient mode."""
        AsmParser(strict=False).parse(text)

    def test_latin1_fallback_file(self, tmp_path):
        path = tmp_path / "weird.asm"
        path.write_bytes(b".text:00401000 nop ; caf\xe9\n")
        program = AsmParser().parse_file(str(path))
        assert 0x401000 in program
