"""Tests for the Program address map."""

import pytest

from repro.asm.instruction import Instruction
from repro.asm.program import Program
from repro.exceptions import AsmParseError


def make_program(addresses):
    return Program(
        Instruction(address=a, mnemonic="nop", size=1) for a in addresses
    )


class TestProgramBasics:
    def test_len_and_contains(self):
        program = make_program([0x10, 0x11, 0x12])
        assert len(program) == 3
        assert 0x11 in program
        assert 0x13 not in program

    def test_duplicate_address_rejected(self):
        program = make_program([0x10])
        with pytest.raises(AsmParseError):
            program.add(Instruction(address=0x10, mnemonic="mov"))

    def test_iteration_sorted_regardless_of_insertion_order(self):
        program = make_program([0x30, 0x10, 0x20])
        assert [inst.address for inst in program] == [0x10, 0x20, 0x30]

    def test_getitem_and_get(self):
        program = make_program([0x10])
        assert program[0x10].address == 0x10
        assert program.get(0x99) is None
        with pytest.raises(KeyError):
            program[0x99]

    def test_first_of_empty_is_none(self):
        assert Program().first() is None

    def test_first(self):
        program = make_program([0x30, 0x10])
        assert program.first().address == 0x10


class TestNextInstruction:
    def test_contiguous(self):
        program = make_program([0x10, 0x11])
        nxt = program.next_instruction(program[0x10])
        assert nxt.address == 0x11

    def test_gap_between_sections(self):
        program = Program([
            Instruction(address=0x10, mnemonic="nop", size=1),
            Instruction(address=0x100, mnemonic="nop", size=1),
        ])
        nxt = program.next_instruction(program[0x10])
        assert nxt.address == 0x100

    def test_last_instruction_has_no_next(self):
        program = make_program([0x10])
        assert program.next_instruction(program[0x10]) is None


class TestNearestAtOrAfter:
    def test_exact_hit(self):
        program = make_program([0x10, 0x20])
        assert program.nearest_at_or_after(0x20).address == 0x20

    def test_snaps_forward(self):
        program = make_program([0x10, 0x20])
        assert program.nearest_at_or_after(0x15).address == 0x20

    def test_past_the_end_is_none(self):
        program = make_program([0x10])
        assert program.nearest_at_or_after(0x999) is None
