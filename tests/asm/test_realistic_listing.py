"""Regression test: a realistic IDA Pro-style listing excerpt.

Modelled on the Kaggle corpus format: section prefixes, encoded bytes,
data declarations, alignment directives, comments, labels, and noise
lines that real listings contain.
"""

from repro.asm.parser import AsmParser
from repro.cfg.builder import CfgBuilder
from repro.features.acfg import ACFG

REALISTIC = """
; ---------------------------------------------------------------------------
; Segment type: Pure code
.text:00401000 ; =============== S U B R O U T I N E =======================
.text:00401000
.text:00401000 sub_401000:
.text:00401000 55                       push ebp
.text:00401001 8B EC                    mov ebp, esp
.text:00401003 83 EC 10                 sub esp, 10h
.text:00401006 C7 45 FC 00 00 00 00     mov [ebp-4], 0
.text:0040100D
.text:0040100D loc_40100D:
.text:0040100D 8B 45 FC                 mov eax, [ebp-4]
.text:00401010 83 F8 0A                 cmp eax, 0Ah
.text:00401013 7D 0B                    jge short loc_401020
.text:00401015 8B 4D FC                 mov ecx, [ebp-4]
.text:00401018 83 C1 01                 add ecx, 1
.text:0040101B 89 4D FC                 mov [ebp-4], ecx
.text:0040101E EB ED                    jmp short loc_40100D
.text:00401020
.text:00401020 loc_401020:
.text:00401020 E8 0B 00 00 00           call sub_401030
.text:00401025 8B E5                    mov esp, ebp
.text:00401027 5D                       pop ebp
.text:00401028 C3                       retn
.text:00401028 sub_401000 endp
.text:00401029 CC CC CC CC CC CC CC     align 10h
.text:00401030 33 C0                    xor eax, eax
.text:00401032 C3                       retn
.data:00403000 68 65 6C 6C 6F           aGreeting db 'hello',0
.data:00403005 00 00 00                 db 3 dup(0)
"""


class TestRealisticListing:
    def setup_method(self):
        self.parser = AsmParser()
        self.program = self.parser.parse(REALISTIC)

    def test_instructions_parsed(self):
        mnemonics = [inst.mnemonic for inst in self.program]
        assert "push" in mnemonics
        assert "jge" in mnemonics
        assert "call" in mnemonics
        # Data declarations survive as instructions (Table I counts them).
        assert "db" in mnemonics or "align" in mnemonics

    def test_labels_resolve(self):
        assert self.parser.resolve_target("loc_40100D") == 0x40100D
        assert self.parser.resolve_target("short loc_401020") == 0x401020
        assert self.parser.resolve_target("sub_401030") == 0x401030

    def test_cfg_structure(self):
        builder = CfgBuilder(resolve_target=self.parser.resolve_target)
        cfg = builder.build(self.program, name="realistic")
        starts = [b.start_address for b in cfg.blocks()]
        # The loop header and exit label must start blocks.
        assert 0x40100D in starts
        assert 0x401020 in starts
        edges = set(cfg.edges())
        # Back edge of the counting loop (jmp short loc_40100D).
        assert (0x401015, 0x40100D) in edges
        # Conditional exit from the loop header block.
        assert (0x40100D, 0x401020) in edges
        # Call edge into the helper.
        assert (0x401020, 0x401030) in edges

    def test_acfg_extraction(self):
        builder = CfgBuilder(resolve_target=self.parser.resolve_target)
        cfg = builder.build(self.program)
        acfg = ACFG.from_cfg(cfg)
        assert acfg.num_attributes == 11
        # The loop-test block (cmp/jge) must count one compare.
        index = {b.start_address: i for i, b in enumerate(cfg.blocks())}
        compare_channel = 4  # Table I order
        assert acfg.attributes[index[0x40100D], compare_channel] >= 1

    def test_call_graph(self):
        from repro.callgraph.extraction import extract_call_graph

        graph = extract_call_graph(
            self.program, self.parser.resolve_target, name="realistic"
        )
        entries = [f.entry_address for f in graph.functions()]
        assert 0x401000 in entries
        assert 0x401030 in entries
        assert (0x401000, 0x401030) in graph.edges()
