"""Tests for the Instruction model."""

from repro.asm.instruction import Instruction
from repro.asm.isa import ControlFlowKind, InstructionCategory


class TestInstructionBasics:
    def test_mnemonic_lowercased(self):
        inst = Instruction(address=0x1000, mnemonic="MOV")
        assert inst.mnemonic == "mov"

    def test_next_address(self):
        inst = Instruction(address=0x1000, mnemonic="mov", size=3)
        assert inst.next_address == 0x1003

    def test_default_tags_unset(self):
        inst = Instruction(address=0x1000, mnemonic="mov")
        assert inst.start is False
        assert inst.branch_to is None
        assert inst.fall_through is False
        assert inst.is_return is False

    def test_category_and_flow_kind_delegate_to_isa(self):
        inst = Instruction(address=0, mnemonic="jnz", operands=["loc_10"])
        assert inst.category is InstructionCategory.TRANSFER
        assert inst.flow_kind is ControlFlowKind.CONDITIONAL_JUMP


class TestNumericConstants:
    def test_decimal_constant(self):
        inst = Instruction(address=0, mnemonic="mov", operands=["eax", "42"])
        assert inst.count_numeric_constants() == 1

    def test_hex_constants_both_styles(self):
        inst = Instruction(address=0, mnemonic="cmp", operands=["eax", "0x1F"])
        assert inst.count_numeric_constants() == 1
        inst = Instruction(address=0, mnemonic="cmp", operands=["eax", "1Fh"])
        assert inst.count_numeric_constants() == 1

    def test_register_is_not_a_constant(self):
        inst = Instruction(address=0, mnemonic="mov", operands=["eax", "ebx"])
        assert inst.count_numeric_constants() == 0

    def test_memory_operand_with_displacement(self):
        inst = Instruction(
            address=0, mnemonic="mov", operands=["eax", "[ebp+8]"]
        )
        assert inst.count_numeric_constants() == 1

    def test_multiple_constants_counted(self):
        inst = Instruction(
            address=0, mnemonic="imul", operands=["eax", "[esi+4]", "0x10"]
        )
        assert inst.count_numeric_constants() == 2

    def test_symbolic_name_not_counted(self):
        inst = Instruction(address=0, mnemonic="jmp", operands=["loc_401000"])
        assert inst.count_numeric_constants() == 0

    def test_no_operands(self):
        inst = Instruction(address=0, mnemonic="retn")
        assert inst.count_numeric_constants() == 0


class TestOperandText:
    def test_join(self):
        inst = Instruction(address=0, mnemonic="mov", operands=["eax", "ebx"])
        assert inst.operand_text() == "eax, ebx"

    def test_empty(self):
        assert Instruction(address=0, mnemonic="retn").operand_text() == ""
