"""Tests for the instruction taxonomy (Table I categories)."""

from repro.asm.isa import (
    ARITHMETICS,
    CALLS,
    COMPARES,
    CONDITIONAL_JUMPS,
    DATA_DECLARATIONS,
    MOVS,
    RETURNS,
    TERMINATIONS,
    TRANSFERS,
    UNCONDITIONAL_JUMPS,
    ControlFlowKind,
    InstructionCategory,
    categorize,
    control_flow_kind,
)


class TestCategorize:
    def test_mov_family(self):
        for mnemonic in ("mov", "movzx", "lea", "xchg"):
            assert categorize(mnemonic) is InstructionCategory.MOV

    def test_arithmetic_family(self):
        for mnemonic in ("add", "sub", "xor", "imul", "shl", "inc"):
            assert categorize(mnemonic) is InstructionCategory.ARITHMETIC

    def test_compare_family(self):
        for mnemonic in ("cmp", "test", "scasb"):
            assert categorize(mnemonic) is InstructionCategory.COMPARE

    def test_call_is_call_not_transfer(self):
        assert categorize("call") is InstructionCategory.CALL

    def test_jumps_count_as_transfers(self):
        assert categorize("jmp") is InstructionCategory.TRANSFER
        assert categorize("jnz") is InstructionCategory.TRANSFER
        assert categorize("loop") is InstructionCategory.TRANSFER

    def test_stack_operations_are_transfers(self):
        for mnemonic in ("push", "pop", "leave", "enter"):
            assert categorize(mnemonic) is InstructionCategory.TRANSFER

    def test_return_is_termination(self):
        assert categorize("retn") is InstructionCategory.TERMINATION
        assert categorize("ret") is InstructionCategory.TERMINATION
        assert categorize("hlt") is InstructionCategory.TERMINATION

    def test_data_declarations(self):
        for mnemonic in ("db", "dd", "dw", "align"):
            assert categorize(mnemonic) is InstructionCategory.DATA_DECLARATION

    def test_unknown_mnemonic_is_other(self):
        assert categorize("frobnicate") is InstructionCategory.OTHER

    def test_case_insensitive(self):
        assert categorize("MOV") is InstructionCategory.MOV
        assert categorize("Jmp") is InstructionCategory.TRANSFER


class TestControlFlowKind:
    def test_conditional_jumps(self):
        for mnemonic in ("jz", "jnz", "ja", "jle", "loop", "jecxz"):
            assert control_flow_kind(mnemonic) is ControlFlowKind.CONDITIONAL_JUMP

    def test_unconditional_jump(self):
        assert control_flow_kind("jmp") is ControlFlowKind.UNCONDITIONAL_JUMP

    def test_call(self):
        assert control_flow_kind("call") is ControlFlowKind.CALL

    def test_return(self):
        for mnemonic in ("ret", "retn", "retf"):
            assert control_flow_kind(mnemonic) is ControlFlowKind.RETURN

    def test_terminate(self):
        assert control_flow_kind("hlt") is ControlFlowKind.TERMINATE
        assert control_flow_kind("int3") is ControlFlowKind.TERMINATE

    def test_sequential_default(self):
        for mnemonic in ("mov", "add", "cmp", "push", "nop"):
            assert control_flow_kind(mnemonic) is ControlFlowKind.SEQUENTIAL


class TestTableConsistency:
    def test_no_overlap_between_jump_classes(self):
        assert not CONDITIONAL_JUMPS & UNCONDITIONAL_JUMPS
        assert not CONDITIONAL_JUMPS & CALLS
        assert not UNCONDITIONAL_JUMPS & CALLS

    def test_returns_are_terminations(self):
        assert RETURNS <= TERMINATIONS

    def test_jumps_are_transfers(self):
        assert CONDITIONAL_JUMPS <= TRANSFERS
        assert UNCONDITIONAL_JUMPS <= TRANSFERS

    def test_category_tables_disjoint_where_required(self):
        assert not MOVS & ARITHMETICS
        assert not MOVS & COMPARES
        assert not ARITHMETICS & COMPARES
        assert not DATA_DECLARATIONS & TRANSFERS
