"""Tests for the tagging pass (Algorithm 1)."""

from repro.asm.instruction import Instruction
from repro.asm.program import Program
from repro.asm.visitor import InstructionTagger


def make_program(rows):
    """rows: list of (address, mnemonic, operands)."""
    return Program(
        Instruction(address=a, mnemonic=m, operands=list(ops), size=1)
        for a, m, ops in rows
    )


def resolver(operand):
    if operand.startswith("loc_"):
        return int(operand[4:], 16)
    return None


class TestConditionalJump:
    """Algorithm 1: visitConditionalJump."""

    def test_branch_target_marked_start(self):
        program = make_program([
            (0x10, "jz", ["loc_12"]),
            (0x11, "nop", []),
            (0x12, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].branch_to == 0x12
        assert program[0x12].start is True

    def test_fall_through_marked_start(self):
        program = make_program([
            (0x10, "jz", ["loc_12"]),
            (0x11, "nop", []),
            (0x12, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].fall_through is True
        assert program[0x11].start is True

    def test_unresolvable_target_no_branch(self):
        program = make_program([
            (0x10, "jz", ["eax"]),
            (0x11, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].branch_to is None
        assert program[0x10].fall_through is True


class TestUnconditionalJump:
    def test_no_fall_through(self):
        program = make_program([
            (0x10, "jmp", ["loc_12"]),
            (0x11, "nop", []),
            (0x12, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].fall_through is False
        assert program[0x10].branch_to == 0x12

    def test_next_instruction_starts_new_block(self):
        program = make_program([
            (0x10, "jmp", ["loc_12"]),
            (0x11, "nop", []),
            (0x12, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x11].start is True


class TestCall:
    def test_call_branches_and_falls_through(self):
        program = make_program([
            (0x10, "call", ["loc_20"]),
            (0x11, "nop", []),
            (0x20, "retn", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].branch_to == 0x20
        assert program[0x10].fall_through is True
        assert program[0x20].start is True

    def test_follow_calls_disabled(self):
        program = make_program([
            (0x10, "call", ["loc_20"]),
            (0x11, "nop", []),
            (0x20, "retn", []),
        ])
        InstructionTagger(resolver, follow_calls=False).tag(program)
        assert program[0x10].branch_to is None
        assert program[0x10].fall_through is True


class TestReturnAndTerminate:
    def test_return_tagged(self):
        program = make_program([
            (0x10, "retn", []),
            (0x11, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].is_return is True
        assert program[0x10].fall_through is False
        assert program[0x11].start is True

    def test_hlt_terminates(self):
        program = make_program([
            (0x10, "hlt", []),
            (0x11, "nop", []),
        ])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].fall_through is False


class TestGeneralTagging:
    def test_first_instruction_always_start(self):
        program = make_program([(0x10, "nop", []), (0x11, "nop", [])])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].start is True

    def test_sequential_instructions_fall_through(self):
        program = make_program([(0x10, "mov", ["eax", "ebx"]), (0x11, "nop", [])])
        InstructionTagger(resolver).tag(program)
        assert program[0x10].fall_through is True

    def test_branch_outside_program_keeps_target_address(self):
        program = make_program([(0x10, "jmp", ["loc_999"]), (0x11, "nop", [])])
        InstructionTagger(resolver).tag(program)
        # Target address recorded even though no instruction lives there.
        assert program[0x10].branch_to == 0x999
