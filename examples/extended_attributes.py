#!/usr/bin/env python
"""Extending the Table I attribute set (Section II-B).

The paper notes "more attributes can be conveniently added to further
improve malware classification performance."  This example measures that
claim: it trains the same DGCNN twice — once on the 11 Table I
attributes, once with four extra channels (in-degree, mnemonic entropy,
unique-mnemonic count, operand count) — and compares validation scores.

Run:  python examples/extended_attributes.py [--total 120] [--epochs 15]
"""

import argparse

from repro.core import Magic, ModelConfig
from repro.datasets import generate_mskcfg_dataset
from repro.features import (
    disable_extended_attributes,
    enable_extended_attributes,
    num_attributes,
)
from repro.train import TrainingConfig


def train_once(total, epochs, seed, label):
    dataset = generate_mskcfg_dataset(total=total, seed=seed,
                                      minimum_per_family=8)
    train, test = dataset.stratified_split(0.2, seed=seed)
    channels = dataset.acfgs[0].num_attributes
    config = ModelConfig(
        num_attributes=channels,
        num_classes=dataset.num_classes,
        pooling="adaptive",
        graph_conv_sizes=(32, 32, 32, 32),
        amp_grid=(3, 3),
        conv2d_channels=16,
        hidden_size=64,
        dropout=0.1,
        seed=seed,
    )
    magic = Magic(config, dataset.family_names)
    history = magic.fit(
        train.acfgs, test.acfgs,
        TrainingConfig(epochs=epochs, batch_size=10,
                       learning_rate=3e-3, seed=seed),
    )
    report = magic.evaluate(test.acfgs)
    print(f"{label:28s} channels={channels:2d} "
          f"accuracy={report.accuracy:.3f} "
          f"macro_f1={report.macro_f1:.3f} "
          f"best_val_loss={history.best_validation_loss:.4f}")
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=120)
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Baseline attribute set: {num_attributes()} channels (Table I)\n")
    baseline = train_once(args.total, args.epochs, args.seed,
                          "Table I attributes")

    added = enable_extended_attributes()
    try:
        print(f"\nExtended with: {', '.join(added)}\n")
        extended = train_once(args.total, args.epochs, args.seed,
                              "Table I + extended")
    finally:
        disable_extended_attributes()

    delta = extended.macro_f1 - baseline.macro_f1
    print(f"\nMacro-F1 change from the 4 extra channels: {delta:+.3f}")
    print("(Exact effect depends on corpus scale and seed; the point is "
          "the pipeline picks up new channels with zero further code.)")


if __name__ == "__main__":
    main()
