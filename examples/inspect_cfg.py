#!/usr/bin/env python
"""CFG inspection: the front half of the MAGIC pipeline, standalone.

Parses an ``.asm`` listing (a file you pass, or a built-in sample),
builds the control flow graph with the two-pass algorithm, prints the
blocks, edges and Table I attributes, and demonstrates serialization and
the networkx bridge.

Run:  python examples/inspect_cfg.py [path/to/listing.asm]
"""

import sys
import tempfile

import networkx as nx

from repro.asm import AsmParser
from repro.cfg import CfgBuilder, load_cfg, save_cfg
from repro.features import ACFG, attribute_names

SAMPLE = """
.text:00401000 push ebp               ; prologue
.text:00401001 mov ebp, esp
.text:00401004 mov ecx, 0x3
loc_401009:
.text:00401009 dec ecx                ; loop body
.text:0040100A test ecx, ecx
.text:0040100C jnz loc_401009
.text:0040100E cmp eax, 0x7F
.text:00401011 jz loc_401018
.text:00401013 call sub_401020
.text:00401018 retn
.text:00401020 xor eax, eax           ; helper function
.text:00401022 retn
"""


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        name = sys.argv[1]
    else:
        text, name = SAMPLE, "(built-in sample)"

    parser = AsmParser()
    program = parser.parse(text)
    print(f"Parsed {name}: {len(program)} instructions, "
          f"{parser.skipped_lines} unparseable lines skipped")

    builder = CfgBuilder(resolve_target=parser.resolve_target)
    cfg = builder.build(program, name=name)
    print(f"CFG: {cfg.num_vertices} blocks, {cfg.num_edges} edges\n")

    acfg = ACFG.from_cfg(cfg)
    names = attribute_names()
    for index, block in enumerate(cfg.blocks()):
        mnemonics = " ".join(i.mnemonic for i in block.instructions)
        print(f"block {block.start_address:#x}  [{mnemonics}]")
        attributes = acfg.attributes[index]
        interesting = {
            n: int(v) for n, v in zip(names, attributes) if v != 0
        }
        print(f"  attributes: {interesting}")
        successors = [f"{s.start_address:#x}" for s in cfg.successors(block)]
        print(f"  successors: {successors or '(exit)'}\n")

    # Serialization round trip.
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as fh:
        path = fh.name
    save_cfg(cfg, path)
    restored = load_cfg(path)
    print(f"Serialized to {path} and reloaded: "
          f"{restored.num_vertices} blocks, {restored.num_edges} edges")

    # networkx analysis.
    graph = cfg.to_networkx()
    print(f"networkx view: DAG={nx.is_directed_acyclic_graph(graph)}, "
          f"weakly connected components="
          f"{nx.number_weakly_connected_components(graph)}")
    try:
        cycle = nx.find_cycle(graph)
        print(f"first cycle found (a loop in the program): {cycle}")
    except nx.NetworkXNoCycle:
        print("no cycles (straight-line program)")


if __name__ == "__main__":
    main()
