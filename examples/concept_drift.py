#!/usr/bin/env python
"""Concept drift: testing a trained model on evolved malware.

Section V-E closes with: "It is possible that malware development trends
after the collection of these two datasets introduce new challenges ...
We plan to test our models with the latest malware samples in our future
work."  This example runs that future-work experiment on the synthetic
substrate: it trains MAGIC on a base corpus, then evaluates on corpora
whose family profiles have been perturbed progressively (new compiler
habits, added obfuscation), measuring how accuracy decays with drift.

Run:  python examples/concept_drift.py [--total 120] [--epochs 15]
"""

import argparse
import dataclasses

from repro.core import Magic, ModelConfig
from repro.datasets import MSKCFG_PROFILES, MalwareDataset
from repro.datasets.mskcfg import MSKCFG_FAMILIES, family_sample_counts
from repro.datasets.synthetic_asm import ProgramGenerator
from repro.features.pipeline import AcfgPipeline
from repro.train import TrainingConfig

import numpy as np


def drifted_profiles(drift: float):
    """Perturb every family profile by ``drift`` in [0, 1].

    Drift raises junk-code obfuscation (malware authors react to
    detection) and shifts the instruction mix toward arithmetic
    (packers/crypters), eroding the signals the model trained on.
    """
    profiles = {}
    for name, profile in MSKCFG_PROFILES.items():
        profiles[name] = dataclasses.replace(
            profile,
            junk_probability=min(1.0, profile.junk_probability + 0.5 * drift),
            weight_arith=profile.weight_arith * (1.0 + drift),
            weight_mov=profile.weight_mov * (1.0 - 0.4 * drift),
            numeric_constant_rate=min(
                1.0, profile.numeric_constant_rate + 0.3 * drift
            ),
        )
    return profiles


def generate_corpus(profiles, total, seed):
    counts = family_sample_counts(total, minimum_per_family=6)
    samples = []
    for label, family in enumerate(MSKCFG_FAMILIES):
        for index in range(counts[family]):
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, label, index])
            )
            listing = ProgramGenerator(profiles[family], rng).generate_listing()
            samples.append((f"{family}_{index}", listing, label))
    report = AcfgPipeline().extract_from_texts(samples)
    return MalwareDataset(acfgs=report.acfgs,
                          family_names=list(MSKCFG_FAMILIES))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=120)
    parser.add_argument("--epochs", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("Training on the base corpus (drift = 0.0)...")
    base = generate_corpus(MSKCFG_PROFILES, args.total, args.seed)
    train, validation = base.stratified_split(0.2, seed=args.seed)
    config = ModelConfig(
        num_attributes=11, num_classes=base.num_classes,
        pooling="adaptive", graph_conv_sizes=(32, 32, 32, 32),
        amp_grid=(3, 3), conv2d_channels=16, hidden_size=64,
        dropout=0.1, seed=args.seed,
    )
    magic = Magic(config, base.family_names)
    magic.fit(train.acfgs, validation.acfgs,
              TrainingConfig(epochs=args.epochs, batch_size=10,
                             learning_rate=3e-3, seed=args.seed))
    in_distribution = magic.evaluate(validation.acfgs).accuracy
    print(f"In-distribution accuracy: {in_distribution:.3f}\n")

    print(f"{'Drift':>6s} {'Accuracy':>9s} {'Degradation':>12s}")
    print(f"{0.0:6.1f} {in_distribution:9.3f} {'-':>12s}")
    for drift in (0.2, 0.5, 1.0):
        drifted = generate_corpus(
            drifted_profiles(drift), args.total // 2, args.seed + 100
        )
        accuracy = magic.evaluate(drifted.acfgs).accuracy
        print(f"{drift:6.1f} {accuracy:9.3f} "
              f"{in_distribution - accuracy:+12.3f}")

    print("\nAccuracy decays as the family signatures drift away from the"
          "\ntraining distribution — the retraining-on-the-cloud story of"
          "\nSection VII exists precisely to counter this.")


if __name__ == "__main__":
    main()
