#!/usr/bin/env python
"""Function call-graph analysis and classification.

Shows the second graph substrate in the repository: function-boundary
recovery, call-graph construction, per-function descriptors, and the
call-graph random-forest ensemble (the method family of Table IV's
"Ensemble Multiple Random Forest Classifiers" row).

Run:  python examples/call_graph_analysis.py [--total 90]
"""

import argparse

import numpy as np

from repro.callgraph import (
    CallGraphForestEnsemble,
    call_graph_from_text,
    function_descriptor,
)
from repro.datasets import generate_mskcfg_listings
from repro.report import bar_chart
from repro.train import evaluate_predictions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=90)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    listings = generate_mskcfg_listings(
        total=args.total, seed=args.seed, minimum_per_family=6
    )

    # -- inspect one sample's call graph ------------------------------------
    name, text, _ = listings[0]
    graph = call_graph_from_text(text, name=name)
    print(f"{name}: {graph.num_functions} functions, "
          f"{graph.num_calls} call edges")
    for function in graph.functions()[:5]:
        descriptor = function_descriptor(function, graph)
        callees = [f"sub_{c:X}" for c in function.callees]
        print(f"  {function.name}: {function.num_instructions} insts, "
              f"{function.num_blocks} blocks -> {callees or '(leaf)'}")
        print(f"    descriptor: {np.round(descriptor, 1).tolist()}")

    # -- classify families from call graphs ---------------------------------
    print("\nExtracting call graphs for the whole corpus...")
    graphs = [call_graph_from_text(t, name=n) for n, t, _ in listings]
    labels = np.array([label for _, _, label in listings])

    order = np.random.default_rng(args.seed).permutation(len(graphs))
    cut = int(0.8 * len(graphs))
    train_idx, test_idx = order[:cut], order[cut:]
    ensemble = CallGraphForestEnsemble(
        num_classes=9, bucket_widths=(16, 32), n_estimators=25,
        seed=args.seed,
    )
    ensemble.fit([graphs[i] for i in train_idx], labels[train_idx])
    probabilities = ensemble.predict_proba([graphs[i] for i in test_idx])
    report = evaluate_predictions(labels[test_idx], probabilities, 9)
    print(f"Call-graph ensemble held-out accuracy: {report.accuracy:.3f} "
          f"(log-loss {report.log_loss:.3f})")

    # -- function-count histogram per family --------------------------------
    counts = {}
    family_names = sorted({n.rsplit("_", 1)[0] for n, _, _ in listings})
    for family in family_names:
        members = [g for (n, _, _), g in zip(listings, graphs)
                   if n.startswith(family)]
        if members:
            counts[family] = float(np.mean([g.num_functions for g in members]))
    print("\n" + bar_chart(counts, title="Mean functions per family:",
                           fmt="{:.1f}"))


if __name__ == "__main__":
    main()
