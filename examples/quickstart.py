#!/usr/bin/env python
"""Quickstart: the full MAGIC pipeline in one minute.

1. Parse an assembly listing and build its control flow graph
   (Algorithms 1 and 2 of the paper).
2. Extract the Table I attributed CFG.
3. Train a small DGCNN-based MAGIC instance on a synthetic malware
   corpus.
4. Classify the listing.

Run:  python examples/quickstart.py
"""

from repro.cfg import build_cfg_from_text
from repro.core import Magic, ModelConfig
from repro.datasets import generate_mskcfg_dataset
from repro.features import ACFG
from repro.train import TrainingConfig

LISTING = """
.text:00401000 push ebp
.text:00401001 mov ebp, esp
.text:00401004 xor ecx, ecx
loc_401006:
.text:00401006 add ecx, 0x1
.text:00401009 cmp ecx, 0x10
.text:0040100C jl loc_401006
.text:0040100E call sub_401020
.text:00401013 retn
.text:00401020 mov eax, 0x5
.text:00401023 retn
"""


def main() -> None:
    # -- 1. listing -> CFG ------------------------------------------------
    cfg = build_cfg_from_text(LISTING, name="quickstart-sample")
    print(f"CFG: {cfg.num_vertices} basic blocks, {cfg.num_edges} edges")
    for block in cfg.blocks():
        successors = [f"{s.start_address:#x}" for s in cfg.successors(block)]
        print(
            f"  block {block.start_address:#x}: {len(block)} instructions"
            f" -> {successors or '(exit)'}"
        )

    # -- 2. CFG -> ACFG ----------------------------------------------------
    acfg = ACFG.from_cfg(cfg)
    print(f"\nACFG attribute matrix: {acfg.attributes.shape}"
          f" (vertices x Table-I channels)")

    # -- 3. train MAGIC on a small synthetic corpus ------------------------
    print("\nGenerating a small synthetic MSKCFG-style corpus...")
    dataset = generate_mskcfg_dataset(total=90, seed=0, minimum_per_family=6)
    train, test = dataset.stratified_split(test_fraction=0.2, seed=0)

    config = ModelConfig(
        num_attributes=acfg.num_attributes,
        num_classes=dataset.num_classes,
        pooling="adaptive",            # the architecture Table II selects
        graph_conv_sizes=(32, 32, 32, 32),
        amp_grid=(3, 3),
        conv2d_channels=16,
        hidden_size=64,
        dropout=0.1,
        seed=0,
    )
    magic = Magic(config, dataset.family_names)
    print(f"Training DGCNN ({magic.model.num_parameters()} parameters)...")
    magic.fit(
        train.acfgs,
        test.acfgs,
        TrainingConfig(epochs=10, batch_size=10, learning_rate=2e-3, seed=0),
    )
    report = magic.evaluate(test.acfgs)
    print(f"Held-out accuracy after 10 epochs: {report.accuracy:.3f}")

    # -- 4. classify the listing -------------------------------------------
    family, probabilities = magic.classify_asm(LISTING)
    print(f"\nPredicted family for the quickstart listing: {family}")
    top3 = sorted(
        zip(dataset.family_names, probabilities), key=lambda p: -p[1]
    )[:3]
    for name, probability in top3:
        print(f"  {name:16s} {probability:.3f}")


if __name__ == "__main__":
    main()
