#!/usr/bin/env python
"""Method comparison in the style of Section V-C (Table IV).

Trains MAGIC's DGCNN and the reimplemented comparator methods (gradient
boosting a la XGBoost, random forest, autoencoder+GBT, Strand-style
sequence classification, ESVC) on the same synthetic corpus and prints
accuracy + mean log-loss per method, ordered like Table IV.

Run:  python examples/compare_with_baselines.py [--total 150] [--epochs 20]
"""

import argparse
import time

from repro.baselines import (
    AutoencoderGbtClassifier,
    EsvcClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    StrandClassifier,
    dataset_to_matrix,
    standardize,
)
from repro.core import Magic, ModelConfig
from repro.datasets import generate_mskcfg_dataset
from repro.train import TrainingConfig, evaluate_predictions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=150)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = generate_mskcfg_dataset(
        total=args.total, seed=args.seed, minimum_per_family=8
    )
    train, test = dataset.stratified_split(test_fraction=0.25, seed=args.seed)
    num_classes = dataset.num_classes
    y_test = test.labels()

    x_train, y_train = dataset_to_matrix(train.acfgs)
    x_test, _ = dataset_to_matrix(test.acfgs)
    x_train_scaled, x_test_scaled = standardize(x_train, x_test)

    rows = []

    def record(name, probabilities, seconds):
        report = evaluate_predictions(y_test, probabilities, num_classes)
        rows.append((name, report.log_loss, report.accuracy, seconds))

    # -- MAGIC (DGCNN, graph input) ----------------------------------------
    config = ModelConfig(
        num_attributes=11, num_classes=num_classes, pooling="adaptive",
        graph_conv_sizes=(32, 32, 32, 32), amp_grid=(3, 3),
        conv2d_channels=16, hidden_size=64, dropout=0.1, seed=args.seed,
    )
    magic = Magic(config, dataset.family_names)
    started = time.perf_counter()
    magic.fit(train.acfgs, test.acfgs,
              TrainingConfig(epochs=args.epochs, batch_size=10,
                             learning_rate=2e-3, seed=args.seed))
    record("MAGIC (DGCNN on ACFGs)", magic.predict_proba(test.acfgs),
           time.perf_counter() - started)

    # -- feature-vector comparators -----------------------------------------
    comparators = [
        ("Gradient boosting + feature engineering",
         GradientBoostingClassifier(num_classes=num_classes, n_rounds=60,
                                    seed=args.seed),
         x_train, x_test),
        ("Autoencoder + gradient boosting",
         AutoencoderGbtClassifier(num_classes=num_classes, seed=args.seed),
         x_train_scaled, x_test_scaled),
        ("Random forest",
         RandomForestClassifier(num_classes=num_classes, n_estimators=60,
                                seed=args.seed),
         x_train, x_test),
        ("ESVC (chained Neyman-Pearson SVMs)",
         EsvcClassifier(num_classes=num_classes, seed=args.seed),
         x_train_scaled, x_test_scaled),
    ]
    for name, model, x_tr, x_te in comparators:
        started = time.perf_counter()
        model.fit(x_tr, y_train)
        record(name, model.predict_proba(x_te), time.perf_counter() - started)

    # -- Strand (sequence input) --------------------------------------------
    started = time.perf_counter()
    strand = StrandClassifier(num_classes=num_classes)
    strand.fit(train.acfgs, y_train.tolist())
    record("Strand (sequence n-grams)", strand.predict_proba(test.acfgs),
           time.perf_counter() - started)

    # -- Table IV layout ------------------------------------------------------
    rows.sort(key=lambda r: r[1])
    print(f"\n{'Approach':44s}{'LogLoss':>9s}{'Accuracy':>10s}{'Train s':>9s}")
    for name, log_loss, accuracy, seconds in rows:
        print(f"{name:44s}{log_loss:9.4f}{100 * accuracy:9.2f}%{seconds:9.1f}")


if __name__ == "__main__":
    main()
