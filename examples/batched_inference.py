#!/usr/bin/env python
"""Batch-first inference: the GraphBatch forward contract.

Every DGCNN variant takes a ``GraphBatch`` — a block-diagonal sparse
merge of a minibatch of ACFGs — as its canonical input.  This example
shows the three equivalent ways to drive a model:

1. hand it a plain list of ACFGs (it collates internally),
2. hand it a pre-built ``GraphBatch``,
3. reuse batches across calls through a memoizing ``BatchCollator``
   (what ``Trainer`` does for the fixed validation chunks).

It also checks the batched path against the per-graph dense reference
implementation, ``forward_reference`` — the two agree to ~1e-10.

Run:  python examples/batched_inference.py
"""

import time

import numpy as np

from repro.core import GraphBatch, ModelConfig, build_model
from repro.datasets import generate_mskcfg_dataset
from repro.features.scaling import AttributeScaler
from repro.train import BatchCollator


def main() -> None:
    dataset = generate_mskcfg_dataset(total=60, seed=0, minimum_per_family=4)
    acfgs = AttributeScaler().fit_transform(dataset.acfgs)[:32]

    model = build_model(ModelConfig(
        num_attributes=acfgs[0].num_attributes,
        num_classes=dataset.num_classes,
        pooling="sort_weighted",
        graph_conv_sizes=(32, 32, 32, 32),
        sort_k=10,
        hidden_size=32,
        dropout=0.0,
        seed=0,
    ))
    model.eval()

    # 1. Sequence input: the model collates for you.
    from_list = model(acfgs)

    # 2. Explicit GraphBatch: build once, reuse as you like.
    batch = GraphBatch(acfgs)
    from_batch = model(batch)
    print(f"batch: {batch.num_graphs} graphs, {batch.total_vertices} vertices,"
          f" {batch.propagation.nnz} stored non-zeros")

    # 3. Memoizing collator: repeat calls skip the rebuild.
    collator = BatchCollator()
    collator(acfgs)
    started = time.perf_counter()
    from_collator = model(collator(acfgs))
    warm_ms = (time.perf_counter() - started) * 1000
    print(f"memoized forward: {warm_ms:.1f} ms"
          f" (cache hits={collator.hits}, misses={collator.misses})")

    np.testing.assert_array_equal(from_list.data, from_batch.data)
    np.testing.assert_array_equal(from_batch.data, from_collator.data)

    # The per-graph dense loop survives as the reference implementation.
    reference = model.forward_reference(acfgs)
    worst = float(np.max(np.abs(from_batch.data - reference.data)))
    print(f"batched vs per-graph reference, max |Δlog-prob|: {worst:.2e}")


if __name__ == "__main__":
    main()
