#!/usr/bin/env python
"""End-to-end online inference through the serving subsystem.

The offline story (train a model, call ``predict_proba`` on ACFGs you
extracted yourself) becomes an online one in three steps:

1. **Publish** a fitted system to a model registry — a versioned,
   sha256-verified archive that also pins the fitted attribute-scaling
   parameters, so serve-time preprocessing is bitwise identical to
   training.
2. **Load** it into an :class:`~repro.serve.InferenceEngine`, which runs
   the whole listing-text -> CFG -> ACFG -> batched-DGCNN path with
   per-request fault isolation and a content-hash prediction cache.
3. **Coalesce** concurrent requests with a :class:`~repro.serve.MicroBatcher`
   so that simultaneous callers share one ``GraphBatch`` forward pass —
   the same machinery behind ``python -m repro.cli serve``.

Run:  python examples/batched_inference.py
"""

import tempfile
import threading

from repro.core import Magic, ModelConfig
from repro.datasets import generate_mskcfg_dataset, generate_mskcfg_listings
from repro.serve import InferenceEngine, MicroBatcher, publish
from repro.train import TrainingConfig


def train_and_publish(registry_root: str) -> None:
    dataset = generate_mskcfg_dataset(total=36, seed=0, minimum_per_family=4)
    magic = Magic(
        ModelConfig(
            num_attributes=dataset.acfgs[0].num_attributes,
            num_classes=dataset.num_classes,
            pooling="sort_weighted",
            graph_conv_sizes=(16, 16),
            sort_k=8,
            hidden_size=16,
            dropout=0.0,
            seed=0,
        ),
        dataset.family_names,
    )
    magic.fit(dataset.acfgs,
              training_config=TrainingConfig(epochs=3, batch_size=8, seed=0))
    info = publish(magic, registry_root, "mskcfg-demo")
    print(f"published {info.describe()} -> {info.path}")


def main() -> None:
    registry_root = tempfile.mkdtemp(prefix="magic-registry-")
    train_and_publish(registry_root)

    engine = InferenceEngine.from_registry(registry_root, "mskcfg-demo")

    # Fresh listings the model has never seen, plus an exact duplicate
    # (hits the content-hash cache) and a malformed one (fails alone,
    # with a structured kind, instead of poisoning the batch).
    listings = generate_mskcfg_listings(total=9, seed=7, minimum_per_family=1)
    samples = [(name, text) for name, text, _ in listings]
    samples.append(("duplicate-of-first", samples[0][1]))
    samples.append(("not-assembly", "this is not a disassembly listing"))

    print(f"\nclassifying {len(samples)} listings in one batch:")
    for result in engine.classify_texts(samples):
        print(f"  {result.describe()}")

    # Concurrent callers coalesce into shared forward passes.
    print(f"\nmicro-batching {len(listings)} concurrent requests:")
    with MicroBatcher(engine, max_batch_size=8, max_wait_ms=200.0) as batcher:
        threads = [
            threading.Thread(target=batcher.submit, args=(text,),
                             kwargs={"name": name})
            for name, text, _ in listings
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    snapshot = engine.metrics.snapshot()
    print(f"  batch size histogram: {snapshot['batches']['size_histogram']}")
    print(f"  cache hit rate:       {snapshot['cache']['hit_rate']:.2f}")
    print(f"  requests ok/failed:   {snapshot['requests']['ok']}"
          f"/{snapshot['requests']['failed']}")


if __name__ == "__main__":
    main()
