#!/usr/bin/env python
"""Hyper-parameter search in the style of Section V-B (Table II).

The paper exhaustively cross-validates 208 settings.  This example runs a
structurally identical but reduced sweep — one representative setting per
architecture/pooling-ratio cell — and prints the ranking by the paper's
criterion (minimum fold-averaged validation loss).

Every (setting, fold) pair is an independent work unit, so the sweep
parallelizes over a process pool (``--n-jobs``) and checkpoints each
completed fold to a JSON-lines journal (``--journal``); an interrupted
run re-invoked with ``--resume`` skips the journaled folds and still
produces exactly the uninterrupted ranking.

Run:  python examples/hyperparameter_search.py [--epochs 8] [--folds 3]
          [--n-jobs 4] [--journal sweep.jsonl] [--resume]
"""

import argparse

from repro.datasets import generate_mskcfg_dataset
from repro.train import GridSearch, reduced_table2_grid, table2_grid


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--total", type=int, default=100)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--folds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-jobs", type=int, default=1,
                        help="worker processes for the (setting x fold) pool")
    parser.add_argument("--journal",
                        help="JSON-lines checkpoint of completed folds")
    parser.add_argument("--resume", action="store_true",
                        help="skip folds already recorded in --journal")
    args = parser.parse_args()

    full = table2_grid()
    settings = reduced_table2_grid()
    print(f"Full Table II grid: {len(full)} settings "
          f"(64 adaptive + 96 sort+Conv1D + 48 sort+WeightedVertices)")
    print(f"Reduced sweep: {len(settings)} settings x "
          f"{args.folds}-fold CV x {args.epochs} epochs "
          f"(n_jobs={args.n_jobs})\n")

    dataset = generate_mskcfg_dataset(
        total=args.total, seed=args.seed, minimum_per_family=args.folds + 2
    )

    def progress(position, count, setting, score):
        print(f"[{position}/{count}] score={score:.4f}  {setting.describe()}")

    search = GridSearch(
        dataset,
        epochs=args.epochs,
        n_splits=args.folds,
        hidden_size=32,
        seed=args.seed,
        progress=progress,
    )
    result = search.run(
        settings, n_jobs=args.n_jobs, journal=args.journal, resume=args.resume
    )

    print("\nRanking (minimum fold-averaged validation loss):")
    for rank, entry in enumerate(result.ranking(), start=1):
        print(f"  {rank}. score={entry.score:.4f}  "
              f"accuracy={entry.result.accuracy:.3f}  "
              f"{entry.setting.describe()}")
    for failure in result.failures:
        print(f"  FAILED {failure.setting.describe()} fold "
              f"{failure.fold_index}: {failure.error}")
    best = result.best
    print(f"\nBest model: {best.setting.describe()}")
    print("(The paper's Table II likewise selects adaptive pooling on both"
          " datasets.)")


if __name__ == "__main__":
    main()
